examples/sandwich_demo.ml: Accountability Array Block Directory Inspector List Lo_core Lo_crypto Lo_net Node Policy Printf Tx
