examples/fair_ordering_demo.mli:
