examples/quickstart.ml: Accountability Array Block Commitment Directory Format Fun Inspector List Lo_core Lo_crypto Lo_net Mempool Node Policy Printf String Tx
