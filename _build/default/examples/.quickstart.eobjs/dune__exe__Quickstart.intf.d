examples/quickstart.mli:
