examples/fair_ordering_demo.ml: Array Block Hashtbl List Lo_core Lo_net Lo_sim Node Option Policy Printf String Tx
