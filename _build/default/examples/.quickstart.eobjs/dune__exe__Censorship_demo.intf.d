examples/censorship_demo.mli:
