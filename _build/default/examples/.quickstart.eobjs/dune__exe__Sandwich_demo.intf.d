examples/sandwich_demo.mli:
