examples/censorship_demo.ml: Accountability Array Block Commitment Directory Format Inspector List Lo_core Lo_crypto Lo_net Mempool Node Policy Printf String Tx
