examples/enforcement_demo.ml: Accountability Array Block Client Directory Enforcement Evidence List Lo_core Lo_crypto Lo_net Node Policy Printf String Tx
