(** Blocks with verifiable structure (paper Sec. 4.3).

    A LØ block declares, besides the ordered transaction ids, everything
    an inspector needs to replay the deterministic build: the creator's
    commitment sequence number the block covers, the fee threshold used
    for selection, the bundle partition of the transaction list, the
    explicitly omitted ids with their claimed reasons, and a tail
    "appendix" of the creator's own fresh transactions (allowed after
    all committed bundles). *)

type omission_reason =
  | Low_fee  (** claimed fee below the declared threshold *)
  | Missing_content  (** id committed but content never arrived *)
  | Settled  (** already included in an earlier block of the chain *)

type t = {
  creator : string;  (** 33-byte identity *)
  height : int;
  prev_hash : string;  (** 32 bytes; doubles as the order seed *)
  start_seq : int;
      (** all creator bundles up to [start_seq] are fully settled by
          earlier blocks and therefore not re-listed *)
  commit_seq : int;  (** creator bundles covered: start_seq+1..commit_seq *)
  fee_threshold : int;
  txids : string list;  (** full 32-byte ids, block order *)
  bundle_sizes : int list;  (** length [commit_seq - start_seq] *)
  appendix : int;  (** fresh own transactions at the tail *)
  omissions : (int * omission_reason) list;  (** short id, reason *)
  timestamp : float;
  signature : string;
}

val genesis_hash : string

val create :
  signer:Lo_crypto.Signer.t ->
  height:int ->
  prev_hash:string ->
  start_seq:int ->
  commit_seq:int ->
  fee_threshold:int ->
  txids:string list ->
  bundle_sizes:int list ->
  appendix:int ->
  omissions:(int * omission_reason) list ->
  timestamp:float ->
  t
(** @raise Invalid_argument if the structure is inconsistent
    (bundle sizes/appendix not summing to the id count, or a bad
    [bundle_sizes] length). *)

val hash : t -> string
val encode : Lo_codec.Writer.t -> t -> unit
val decode : Lo_codec.Reader.t -> t
val to_string : t -> string
val of_string : string -> t
val encoded_size : t -> int
val verify_signature : Lo_crypto.Signer.scheme -> t -> bool

val structure_ok : t -> bool
(** Shape invariants: sizes sum to the id count, sizes list length
    matches [commit_seq], non-negative fields. *)

val bundle_txids : t -> (int * string list) list
(** The block's ids grouped per bundle: (bundle seq, ids in block
    order); excludes the appendix. *)

val appendix_txids : t -> string list
