(** 32-bit short transaction ids.

    The reconciliation layer works on compact ids — "the 32-bit integer
    representation of transaction hashes" (paper Sec. 4.2) — which are
    exactly the PinSketch field elements. Short ids are nonzero by
    construction (0 is not representable in a PinSketch). *)

val of_txid : string -> int
(** Derived from the leading bytes of a 32-byte transaction id; uniform
    over [\[1, 2^32 - 1\]]. *)

val max_value : int
(** 2^32 - 1. *)
