module Network = Lo_net.Network
module Mux = Lo_net.Mux
module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer
module Sketch = Lo_sketch.Sketch

type behavior =
  | Honest
  | Silent_censor
  | Tx_censor of (Tx.t -> bool)
  | Block_injector
  | Block_reorderer
  | Blockspace_censor of (Tx.t -> bool)
  | Equivocator

type config = {
  scheme : Signer.scheme;
  reconcile_period : float;
  reconcile_fanout : int;
  request_timeout : float;
  max_retries : int;
  sketch_capacity : int;
  clock_cells : int;
  fee_threshold : int;
  max_block_txs : int;
  max_delta : int;
  digest_share_period : float;
  always_full_digests : bool;
  reject_exposed_blocks : bool;
  max_digests_per_peer : int;
}

let default_config scheme =
  {
    scheme;
    reconcile_period = 1.0;
    reconcile_fanout = 3;
    request_timeout = 1.0;
    max_retries = 3;
    sketch_capacity = Commitment.default_sketch_capacity;
    clock_cells = Commitment.default_clock_cells;
    fee_threshold = 0;
    max_block_txs = 2000;
    max_delta = 100;
    digest_share_period = 2.0;
    always_full_digests = false;
    reject_exposed_blocks = false;
    max_digests_per_peer = 1024;
  }

type hooks = {
  mutable on_tx_content : Tx.t -> now:float -> unit;
  mutable on_block_accepted : Block.t -> now:float -> unit;
  mutable on_exposure : accused:string -> now:float -> unit;
  mutable on_suspicion : suspect:string -> now:float -> unit;
  mutable on_suspicion_cleared : suspect:string -> now:float -> unit;
  mutable on_violation : Inspector.violation -> block:Block.t -> now:float -> unit;
  mutable on_sketch_decode : now:float -> unit;
  mutable on_reconcile : now:float -> unit;
}

let no_hooks () =
  {
    on_tx_content = (fun _ ~now:_ -> ());
    on_block_accepted = (fun _ ~now:_ -> ());
    on_exposure = (fun ~accused:_ ~now:_ -> ());
    on_suspicion = (fun ~suspect:_ ~now:_ -> ());
    on_suspicion_cleared = (fun ~suspect:_ ~now:_ -> ());
    on_violation = (fun _ ~block:_ ~now:_ -> ());
    on_sketch_decode = (fun ~now:_ -> ());
    on_reconcile = (fun ~now:_ -> ());
  }

type peer_state = {
  digests : (int, Commitment.digest) Hashtbl.t;
  bundles : (int, int list) Hashtbl.t;
  mutable latest : Commitment.digest option;
}

type pending = { mutable waiting : bool; mutable retries : int; mutable gen : int }

type t = {
  config : config;
  net : Network.t;
  mux : Mux.t;
  index : int;
  directory : Directory.t;
  signer : Signer.t;
  my_id : string;
  mutable neighbors : int list;
  behavior : behavior;
  rng : Rng.t;
  mempool : Mempool.t;
  log : Commitment.Log.t;
  alt_log : Commitment.Log.t option; (* equivocation fork *)
  peers : (string, peer_state) Hashtbl.t;
  acc : Accountability.t;
  pending : (string, pending) Hashtbl.t;
  missing : (int, float) Hashtbl.t; (* committed ids lacking content *)
  hooks : hooks;
  blocks_by_height : (int, Block.t) Hashtbl.t;
  mutable head : Block.t option;
  seen_blocks : (string, unit) Hashtbl.t;
  seen_suspicions : (string * string, unit) Hashtbl.t;
  seen_exposures : (string, unit) Hashtbl.t;
  pending_inspections : (string, Block.t list ref) Hashtbl.t; (* by creator *)
  inspection_retries : (string, int) Hashtbl.t; (* by block hash *)
  requested_digests : (string * int, unit) Hashtbl.t; (* (owner, seq) *)
  settled : (int, int) Hashtbl.t; (* short id -> block height *)
  recent_digests : Commitment.digest option array; (* relay ring buffer *)
  mutable recent_pos : int;
}

let index t = t.index
let node_id t = t.my_id
let behavior t = t.behavior
let hooks t = t.hooks
let mempool t = t.mempool
let commitment_log t = t.log
let accountability t = t.acc
let neighbors t = t.neighbors
let set_neighbors t ns = t.neighbors <- ns

let create config ~net ~mux ~index ~directory ~signer ~neighbors ~behavior =
  let my_id = Signer.id signer in
  let mk_log () =
    Commitment.Log.create ~sketch_capacity:config.sketch_capacity
      ~clock_cells:config.clock_cells ~signer ()
  in
  {
    config;
    net;
    mux;
    index;
    directory;
    signer;
    my_id;
    neighbors;
    behavior;
    rng = Rng.split (Network.rng net);
    mempool = Mempool.create ();
    log = mk_log ();
    alt_log = (match behavior with Equivocator -> Some (mk_log ()) | _ -> None);
    peers = Hashtbl.create 32;
    acc = Accountability.create ();
    pending = Hashtbl.create 32;
    missing = Hashtbl.create 64;
    hooks = no_hooks ();
    blocks_by_height = Hashtbl.create 16;
    head = None;
    seen_blocks = Hashtbl.create 16;
    seen_suspicions = Hashtbl.create 16;
    seen_exposures = Hashtbl.create 16;
    pending_inspections = Hashtbl.create 4;
    inspection_retries = Hashtbl.create 8;
    requested_digests = Hashtbl.create 32;
    settled = Hashtbl.create 256;
    recent_digests = Array.make 32 None;
    recent_pos = 0;
  }

(* --- small helpers --- *)

let now t = Network.now t.net

let peer_state t owner =
  match Hashtbl.find_opt t.peers owner with
  | Some st -> st
  | None ->
      let st =
        { digests = Hashtbl.create 8; bundles = Hashtbl.create 8; latest = None }
      in
      Hashtbl.add t.peers owner st;
      st

let index_of_id t id = Directory.index_of t.directory id

let send_msg t ~dst msg =
  Network.send t.net ~src:t.index ~dst ~tag:(Messages.tag msg)
    (Messages.encode msg)

let broadcast t msg = List.iter (fun n -> send_msg t ~dst:n msg) t.neighbors

(* Digest used in routine reconciliation messages: light unless the
   ablation knob forces the full form. *)
let wire_digest t log =
  if t.config.always_full_digests then Commitment.Log.current_digest log
  else Commitment.Log.current_digest_light log

(* The log this node shows to a given peer (equivocators fork). *)
let log_for t ~peer_index =
  match (t.behavior, t.alt_log) with
  | Equivocator, Some alt when peer_index mod 2 = 1 -> alt
  | _ -> t.log

(* Append a learned bundle to the node's commitment(s). *)
let commit_bundle t ~source ~ids =
  let d = Commitment.Log.append t.log ~source ~ids in
  (match t.alt_log with
  | Some alt -> ignore (Commitment.Log.append alt ~source ~ids)
  | None -> ());
  d

let head_hash t =
  match t.head with None -> Block.genesis_hash | Some b -> Block.hash b

let chain_height t = match t.head with None -> 0 | Some b -> b.Block.height
let find_block t ~height = Hashtbl.find_opt t.blocks_by_height height

let known_digest t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | None -> None
  | Some st -> st.latest

let commitment_storage_bytes t =
  Hashtbl.fold
    (fun _ st acc ->
      Hashtbl.fold (fun _ d a -> a + Commitment.encoded_size d) st.digests acc)
    t.peers 0

let missing_content_count t = Hashtbl.length t.missing

(* Record a peer's self-declared newest bundle. The declaration is
   only used to steer inspection; any exposure still requires signed
   digest evidence, so a lying peer can at worst waste an audit. *)
let note_appended t ~owner ~seq appended =
  if appended <> [] && seq >= 1 then begin
    let st = peer_state t owner in
    if not (Hashtbl.mem st.bundles seq) then
      Hashtbl.replace st.bundles seq appended
  end

(* --- exposure --- *)

let rec expose t ~accused evidence =
  if not (String.equal accused t.my_id) then begin
    if Accountability.expose t.acc ~peer:accused evidence then begin
      t.hooks.on_exposure ~accused ~now:(now t);
      Hashtbl.replace t.seen_exposures accused ();
      broadcast t (Messages.Exposure_note evidence)
    end
  end

(* --- digest bookkeeping & equivocation detection (Fig. 4) --- *)

and note_digest t digest =
  let open Commitment in
  if String.equal digest.owner t.my_id then ()
  else if not (Commitment.verify t.config.scheme digest) then ()
  else begin
    let st = peer_state t digest.owner in
    match Hashtbl.find_opt st.digests digest.seq with
    | Some existing ->
        if not (Commitment.equal_content existing digest) then
          expose t ~accused:digest.owner
            (Evidence.Conflicting_digests { older = existing; newer = digest })
        else if Commitment.is_full digest && not (Commitment.is_full existing)
        then begin
          (* Upgrade a light snapshot to the full form. *)
          Hashtbl.replace st.digests digest.seq digest;
          (match st.latest with
          | Some l when l.seq = digest.seq -> st.latest <- Some digest
          | _ -> ());
          derive_bundles t st digest;
          retry_inspections t digest.owner
        end
    | None ->
        let below = ref None and above = ref None in
        Hashtbl.iter
          (fun seq d ->
            if seq < digest.seq then
              match !below with
              | Some (s, _) when s >= seq -> ()
              | _ -> below := Some (seq, d)
            else
              match !above with
              | Some (s, _) when s <= seq -> ()
              | _ -> above := Some (seq, d))
          st.digests;
        let consistent = ref true in
        let check ~older ~newer ~bundle_seq_if_adjacent ~adjacent =
          (* Adjacent pairs are always set-audited (they also yield the
             bundle contents); distant pairs get a sampled audit — the
             cheap counter/clock checks still run on every message, and
             with many nodes sampling independently an equivocator is
             still caught quickly. *)
          let audit =
            adjacent || Rng.int t.rng 8 = 0 || not (Commitment.is_full older)
            || not (Commitment.is_full newer)
          in
          let max_decode = if audit then 256 else 0 in
          (if audit && Commitment.is_full older && Commitment.is_full newer
           then t.hooks.on_sketch_decode ~now:(now t));
          match check_extension ~max_decode ~older ~newer () with
          | Inconsistent ->
              consistent := false;
              expose t ~accused:digest.owner
                (Evidence.Conflicting_digests { older; newer })
          | Consistent ids ->
              if adjacent then Hashtbl.replace st.bundles bundle_seq_if_adjacent ids
          | Plausible | Inconclusive -> ()
        in
        (match !below with
        | None -> ()
        | Some (seq_b, b) ->
            check ~older:b ~newer:digest ~bundle_seq_if_adjacent:digest.seq
              ~adjacent:(seq_b = digest.seq - 1));
        (match !above with
        | None -> ()
        | Some (seq_a, a) ->
            check ~older:digest ~newer:a ~bundle_seq_if_adjacent:seq_a
              ~adjacent:(seq_a = digest.seq + 1));
        if !consistent then begin
          Hashtbl.replace st.digests digest.seq digest;
          (* Retention bound: evict the oldest snapshot (seq 0 is kept —
             it anchors first-bundle evidence). *)
          if Hashtbl.length st.digests > t.config.max_digests_per_peer then begin
            let oldest =
              Hashtbl.fold
                (fun seq _ acc -> if seq > 0 && seq < acc then seq else acc)
                st.digests max_int
            in
            if oldest < max_int then Hashtbl.remove st.digests oldest
          end;
          t.recent_digests.(t.recent_pos) <- Some digest;
          t.recent_pos <- (t.recent_pos + 1) mod Array.length t.recent_digests;
          (match st.latest with
          | Some l when l.seq >= digest.seq -> ()
          | _ -> st.latest <- Some digest);
          retry_inspections t digest.owner
        end
  end

(* Recompute bundles adjacent to a freshly upgraded full digest. *)
and derive_bundles t st digest =
  let open Commitment in
  (match Hashtbl.find_opt st.digests (digest.seq - 1) with
  | Some b when Commitment.is_full b && Commitment.is_full digest -> begin
      t.hooks.on_sketch_decode ~now:(now t);
      match check_extension ~older:b ~newer:digest () with
      | Consistent ids -> Hashtbl.replace st.bundles digest.seq ids
      | Inconsistent ->
          expose t ~accused:digest.owner
            (Evidence.Conflicting_digests { older = b; newer = digest })
      | Plausible | Inconclusive -> ()
    end
  | _ -> ());
  match Hashtbl.find_opt st.digests (digest.seq + 1) with
  | Some a when Commitment.is_full a && Commitment.is_full digest -> begin
      t.hooks.on_sketch_decode ~now:(now t);
      match check_extension ~older:digest ~newer:a () with
      | Consistent ids -> Hashtbl.replace st.bundles a.seq ids
      | Inconsistent ->
          expose t ~accused:digest.owner
            (Evidence.Conflicting_digests { older = digest; newer = a })
      | Plausible | Inconclusive -> ()
    end
  | _ -> ()

(* --- block inspection --- *)

and knowledge_for t creator =
  let st = peer_state t creator in
  {
    Inspector.bundle_of_seq = (fun seq -> Hashtbl.find_opt st.bundles seq);
    find_tx =
      (fun short_id ->
        Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool short_id));
    settled_height = (fun short_id -> Hashtbl.find_opt t.settled short_id);
  }

and evidence_for t (block : Block.t) violation =
  let st = peer_state t block.creator in
  let pair seq =
    match
      (Hashtbl.find_opt st.digests (seq - 1), Hashtbl.find_opt st.digests seq)
    with
    | Some older, Some newer
      when Commitment.is_full older && Commitment.is_full newer ->
        Some (older, newer)
    | _ -> None
  in
  match violation with
  | Inspector.Reordering { bundle_seq } | Inspector.Injection { bundle_seq = Some bundle_seq; _ } ->
      Option.map
        (fun (older, newer) ->
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = None })
        (pair bundle_seq)
  | Inspector.Blockspace_censorship { bundle_seq; short_id }
  | Inspector.False_omission_claim { bundle_seq; short_id } -> begin
      match (pair bundle_seq, Mempool.find_short t.mempool short_id) with
      | Some (older, newer), Some entry ->
          Some
            (Evidence.Block_bundle_violation
               { block; older; newer; omitted_tx = Some entry.Mempool.tx })
      | _ -> None
    end
  | Inspector.Injection { bundle_seq = None; _ } | Inspector.Bad_structure _ ->
      None

and inspect_block t (block : Block.t) ~from =
  if String.equal block.creator t.my_id then ()
  else begin
    let report = Inspector.inspect block (knowledge_for t block.creator) in
    let need_digests = ref [] in
    List.iter
      (fun violation ->
        t.hooks.on_violation violation ~block ~now:(now t);
        match evidence_for t block violation with
        | Some evidence ->
            if Evidence.verify t.config.scheme evidence then
              expose t ~accused:block.creator evidence
        | None -> begin
            match violation with
            | Inspector.Reordering { bundle_seq }
            | Inspector.Injection { bundle_seq = Some bundle_seq; _ }
            | Inspector.Blockspace_censorship { bundle_seq; _ }
            | Inspector.False_omission_claim { bundle_seq; _ } ->
                need_digests := bundle_seq :: !need_digests
            | Inspector.Injection { bundle_seq = None; _ }
            | Inspector.Bad_structure _ -> ()
          end)
      report.violations;
    (* Unverified bundles are audited by a random sample of inspectors
       (expected ~8 network-wide) rather than by everyone — the audit
       fetches the digest pair and a detected violation is gossiped to
       the rest. Violations always fetch (they need evidence). *)
    let audit_probability =
      Float.min 1.0 (8.0 /. float_of_int (Directory.size t.directory))
    in
    let sampled =
      List.filter
        (fun _ -> Rng.float t.rng 1.0 < audit_probability)
        report.unverified_bundles
    in
    match List.sort_uniq Int.compare (sampled @ !need_digests) with
    | [] -> ()
    | seqs ->
        (* Remember the block, then fetch the digest pairs we lack. *)
        let cell =
          match Hashtbl.find_opt t.pending_inspections block.creator with
          | Some cell -> cell
          | None ->
              let cell = ref [] in
              Hashtbl.add t.pending_inspections block.creator cell;
              cell
        in
        if not (List.exists (fun b -> Block.hash b = Block.hash block) !cell)
        then cell := block :: !cell;
        let targets =
          from
          :: (match index_of_id t block.creator with Some i -> [ i ] | None -> [])
        in
        List.iter
          (fun seq ->
            List.iter
              (fun seq ->
                if not (Hashtbl.mem t.requested_digests (block.creator, seq))
                then begin
                  Hashtbl.add t.requested_digests (block.creator, seq) ();
                  List.iter
                    (fun dst ->
                      send_msg t ~dst
                        (Messages.Digest_request { owner = block.creator; seq }))
                    targets
                end)
              [ seq; seq - 1 ])
          seqs
  end

and retry_inspections t owner =
  match Hashtbl.find_opt t.pending_inspections owner with
  | None -> ()
  | Some cell ->
      let blocks = !cell in
      cell := [];
      Hashtbl.remove t.pending_inspections owner;
      List.iter
        (fun b ->
          let h = Block.hash b in
          let tries =
            Option.value (Hashtbl.find_opt t.inspection_retries h) ~default:0
          in
          if tries < 5 then begin
            Hashtbl.replace t.inspection_retries h (tries + 1);
            inspect_block t b ~from:t.index
          end)
        blocks

(* --- transaction intake --- *)

let ack_signing_bytes ~txid = "lo-ack" ^ txid

let censors t tx =
  match t.behavior with Tx_censor pred -> pred tx | _ -> false

let store_content t tx ~from_peer =
  let short = Tx.short_id tx in
  if not (Mempool.mem_short t.mempool short) then begin
    match Mempool.add t.mempool ~tx ~received_at:(now t) ~from_peer with
    | `Duplicate -> ()
    | `Added _ ->
        Hashtbl.remove t.missing short;
        t.hooks.on_tx_content tx ~now:(now t)
  end

(* Make the equivocation fork diverge: the alternative log gets a
   self-made substitute transaction instead of the real one. *)
let equivocator_alt_tx t tx =
  Tx.create ~signer:t.signer ~fee:tx.Tx.fee ~created_at:tx.Tx.created_at
    ~payload:(Lo_crypto.Sha256.digest ("fork" ^ tx.Tx.id))

let submit_tx t tx =
  match Tx.prevalidate t.config.scheme tx with
  | Error _ -> ()
  | Ok () ->
      if censors t tx then ()
      else begin
        let short = Tx.short_id tx in
        if not (Commitment.Log.contains t.log short) then begin
          ignore (Commitment.Log.append t.log ~source:None ~ids:[ short ]);
          (match t.alt_log with
          | Some alt ->
              let alt_tx = equivocator_alt_tx t tx in
              ignore
                (Commitment.Log.append alt ~source:None
                   ~ids:[ Tx.short_id alt_tx ]);
              store_content t alt_tx ~from_peer:None
          | None -> ());
          store_content t tx ~from_peer:None
        end
      end

(* --- reconciliation (Alg. 1) --- *)

let pending_for t peer_id =
  match Hashtbl.find_opt t.pending peer_id with
  | Some p -> p
  | None ->
      let p = { waiting = false; retries = 0; gen = 0 } in
      Hashtbl.add t.pending peer_id p;
      p

let want_list t =
  let acc = ref [] and count = ref 0 in
  (try
     Hashtbl.iter
       (fun id _ ->
         if !count >= t.config.max_delta then raise Exit;
         acc := id :: !acc;
         incr count)
       t.missing
   with Exit -> ());
  !acc

let cap n xs =
  List.filteri (fun i _ -> i < n) xs

(* What the peer is (probably) missing from us, and — when the stored
   digest carries a sketch — what we are missing from it. The common
   path is the Bloom-clock comparison of Sec. 4.2: we offer the ids in
   cells where our clock exceeds the peer's; the responder drops
   duplicates. A full stored sketch enables the exact set difference
   (skipped for very large gaps, where explicit clock-guided offers
   converge faster than an expensive decode). *)
let clock_delta t ~log my_digest peer_digest =
  let surplus =
    Lo_bloom.Bloom_clock.diff_cells my_digest.Commitment.clock
      peer_digest.Commitment.clock
    |> List.filter (fun cell ->
           Lo_bloom.Bloom_clock.get my_digest.Commitment.clock cell
           > Lo_bloom.Bloom_clock.get peer_digest.Commitment.clock cell)
  in
  let candidates = Commitment.Log.ids_in_cells log surplus in
  (* Most recent first: those are the likeliest gaps. *)
  (cap t.config.max_delta (List.rev candidates), [])

let delta_for t ~log peer_latest =
  let my_digest = Commitment.Log.current_digest log in
  match peer_latest with
  | None -> (cap t.config.max_delta (Commitment.Log.all_ids log), [])
  | Some peer_digest -> begin
      try
      match (my_digest.Commitment.sketch, peer_digest.Commitment.sketch) with
      | Some mine_sketch, Some peer_sketch -> begin
          t.hooks.on_sketch_decode ~now:(now t);
          let merged = Sketch.merge mine_sketch peer_sketch in
          let estimate =
            Lo_bloom.Bloom_clock.estimate_difference
              my_digest.Commitment.clock peer_digest.Commitment.clock
          in
          if estimate > 128 then raise Exit;
          let small = min (Sketch.capacity merged) (estimate + 8) in
          let decoded =
            match Sketch.decode (Sketch.truncate merged ~capacity:small) with
            | Ok diff -> Ok diff
            | Error `Decode_failure when small < Sketch.capacity merged ->
                Sketch.decode merged
            | Error `Decode_failure -> Error `Decode_failure
          in
          match decoded with
          | Ok diff ->
              let mine, theirs =
                List.partition (Commitment.Log.contains log) diff
              in
              (cap t.config.max_delta mine, theirs)
          | Error `Decode_failure ->
              (* Degrade to offering the most recent ids; later rounds
                 converge (the paper splits the sketch instead). *)
              let recent =
                List.rev (Commitment.Log.all_ids log) |> cap t.config.max_delta
              in
              (recent, [])
        end
      | _ -> clock_delta t ~log my_digest peer_digest
      with Exit -> clock_delta t ~log my_digest peer_digest
    end

let rec reconcile_with ?(force = false) t peer_index =
  if peer_index <> t.index then begin
    let peer_id = Directory.id_of t.directory peer_index in
    if not (Accountability.is_exposed t.acc peer_id) then begin
      let p = pending_for t peer_id in
      if not p.waiting then begin
        let log = log_for t ~peer_index in
        let delta, learned = delta_for t ~log (peer_state t peer_id).latest in
        (* Commit to the ids the peer committed to and we lack
           (processing them after everything we know, Alg. 1 line 22). *)
        let fresh = List.filter (fun id -> not (Commitment.Log.contains t.log id)) learned in
        if fresh <> [] then begin
          ignore (commit_bundle t ~source:(Some peer_id) ~ids:fresh);
          List.iter
            (fun id ->
              if not (Mempool.mem_short t.mempool id) then
                Hashtbl.replace t.missing id (now t))
            fresh
        end;
        let my_digest = wire_digest t (log_for t ~peer_index) in
        let want = want_list t in
        if force || delta <> [] || want <> []
           || (peer_state t peer_id).latest = None
        then begin
          t.hooks.on_reconcile ~now:(now t);
          p.waiting <- true;
          p.gen <- p.gen + 1;
          let gen = p.gen in
          send_msg t ~dst:peer_index
            (Messages.Commit_request
               { digest = my_digest; delta; want; appended = fresh });
          Network.schedule t.net ~delay:t.config.request_timeout (fun _ ->
              request_timeout t peer_index peer_id gen)
        end
      end
    end
  end

and request_timeout t peer_index peer_id gen =
  let p = pending_for t peer_id in
  if p.waiting && p.gen = gen then begin
    p.waiting <- false;
    p.retries <- p.retries + 1;
    if p.retries <= t.config.max_retries then reconcile_with ~force:true t peer_index
    else begin
      p.retries <- 0;
      if not (Accountability.is_suspected t.acc peer_id) then begin
        Accountability.suspect t.acc ~peer:peer_id ~now:(now t)
          ~reason:"request timeout";
        t.hooks.on_suspicion ~suspect:peer_id ~now:(now t);
        let last_digest = (peer_state t peer_id).latest in
        broadcast t
          (Messages.Suspicion_note
             {
               suspect = peer_id;
               reporter = t.my_id;
               last_digest;
               reason = "request timeout";
             })
      end
    end
  end

let resolve_pending t peer_id =
  let p = pending_for t peer_id in
  p.waiting <- false;
  p.retries <- 0;
  if Accountability.is_suspected t.acc peer_id then begin
    Accountability.clear_suspicion t.acc ~peer:peer_id;
    t.hooks.on_suspicion_cleared ~suspect:peer_id ~now:(now t)
  end

(* --- message handling --- *)

let txs_for t ids =
  List.filter_map
    (fun id ->
      Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool id))
    ids

let handle_commit_request t ~from digest delta want appended =
  note_digest t digest;
  note_appended t ~owner:digest.Commitment.owner ~seq:digest.Commitment.seq
    appended;
  let from_id = digest.Commitment.owner in
  let log = log_for t ~peer_index:from in
  let unknown =
    List.filter (fun id -> not (Commitment.Log.contains log id)) delta
    |> List.sort_uniq Int.compare
  in
  if unknown <> [] then begin
    ignore (commit_bundle t ~source:(Some from_id) ~ids:unknown);
    List.iter
      (fun id ->
        if not (Mempool.mem_short t.mempool id) then
          Hashtbl.replace t.missing id (now t))
      unknown
  end;
  let log = log_for t ~peer_index:from in
  let my_digest = wire_digest t log in
  let my_want = want_list t in
  (* The reverse direction: what the requester is missing from us,
     judged against the digest it just sent. *)
  let reverse_delta, _ = delta_for t ~log (Some digest) in
  send_msg t ~dst:from
    (Messages.Commit_response
       {
         digest = my_digest;
         want = my_want;
         delta = reverse_delta;
         appended = unknown;
       });
  (* Content the requester asked for and we can serve. *)
  let have = txs_for t want in
  if have <> [] then send_msg t ~dst:from (Messages.Tx_batch have)

let handle_commit_response t ~from digest want delta appended =
  resolve_pending t digest.Commitment.owner;
  note_digest t digest;
  note_appended t ~owner:digest.Commitment.owner ~seq:digest.Commitment.seq
    appended;
  let have = txs_for t want in
  if have <> [] then send_msg t ~dst:from (Messages.Tx_batch have);
  (* Commit to the ids the responder says we are missing, then fetch
     their content right away. *)
  let fresh =
    List.filter (fun id -> not (Commitment.Log.contains t.log id)) delta
    |> List.sort_uniq Int.compare
  in
  if fresh <> [] then begin
    ignore (commit_bundle t ~source:(Some digest.Commitment.owner) ~ids:fresh);
    List.iter
      (fun id ->
        if not (Mempool.mem_short t.mempool id) then
          Hashtbl.replace t.missing id (now t))
      fresh;
    let my_digest = wire_digest t (log_for t ~peer_index:from) in
    send_msg t ~dst:from
      (Messages.Commit_request
         { digest = my_digest; delta = []; want = fresh; appended = fresh })
  end

let handle_tx_batch t ~from txs =
  let from_id = Directory.id_of t.directory from in
  List.iter
    (fun tx ->
      match Tx.prevalidate t.config.scheme tx with
      | Error _ -> ()
      | Ok () ->
          if not (censors t tx) then begin
            let short = Tx.short_id tx in
            if not (Commitment.Log.contains t.log short) then
              ignore (commit_bundle t ~source:(Some from_id) ~ids:[ short ]);
            store_content t tx ~from_peer:(Some from_id)
          end)
    txs

let handle_suspicion t ~from note =
  let { Messages.suspect; reporter; last_digest; reason = _ } =
    note
  in
  if String.equal suspect t.my_id then begin
    (* Publicly answer: share our current (full) commitment with both
       parties. *)
    let d = Commitment.Log.current_digest t.log in
    (match index_of_id t reporter with
    | Some r -> send_msg t ~dst:r (Messages.Digest_share d)
    | None -> ());
    send_msg t ~dst:from (Messages.Digest_share d)
  end
  else if not (Hashtbl.mem t.seen_suspicions (suspect, reporter)) then begin
    Hashtbl.add t.seen_suspicions (suspect, reporter) ();
    Option.iter (note_digest t) last_digest;
    (* If we know a newer commitment, give it to the reporter (Fig. 4). *)
    (match ((peer_state t suspect).latest, last_digest, index_of_id t reporter) with
    | Some mine, Some theirs, Some r when mine.Commitment.seq > theirs.Commitment.seq ->
        send_msg t ~dst:r (Messages.Digest_reply [ mine ])
    | _ -> ());
    if not (Accountability.is_suspected t.acc suspect) then begin
      Accountability.suspect t.acc ~peer:suspect ~now:(now t)
        ~reason:"gossiped suspicion";
      t.hooks.on_suspicion ~suspect ~now:(now t)
    end;
    broadcast t (Messages.Suspicion_note note);
    (* Probe the suspect ourselves so a correct node can clear itself. *)
    match index_of_id t suspect with
    | Some s -> reconcile_with ~force:true t s
    | None -> ()
  end

let handle_exposure t evidence =
  let accused = Evidence.accused evidence in
  if
    (not (String.equal accused t.my_id))
    && (not (Hashtbl.mem t.seen_exposures accused))
    && Evidence.verify t.config.scheme evidence
  then expose t ~accused evidence

let handle_digest_request t ~from owner seq =
  let reply ds = if ds <> [] then send_msg t ~dst:from (Messages.Digest_reply ds) in
  if String.equal owner t.my_id then
    reply
      (List.filter_map
         (fun s -> Commitment.Log.digest_at t.log ~seq:s)
         [ seq; seq - 1 ])
  else begin
    let st = peer_state t owner in
    reply
      (List.filter_map
         (fun s -> Hashtbl.find_opt st.digests s)
         [ seq; seq - 1 ])
  end

let accept_block t (block : Block.t) ~from =
  let h = Block.hash block in
  if not (Hashtbl.mem t.seen_blocks h) then begin
    Hashtbl.add t.seen_blocks h ();
    if
      Block.verify_signature t.config.scheme block
      && Block.structure_ok block
      && not
           (t.config.reject_exposed_blocks
           && Accountability.is_exposed t.acc block.creator)
    then begin
      if not (Hashtbl.mem t.blocks_by_height block.height) then begin
        Hashtbl.add t.blocks_by_height block.height block;
        (match t.head with
        | Some head when head.Block.height >= block.height -> ()
        | _ -> t.head <- Some block);
        List.iter
          (fun txid ->
            let id = Short_id.of_txid txid in
            if not (Hashtbl.mem t.settled id) then
              Hashtbl.add t.settled id block.height)
          block.txids;
        t.hooks.on_block_accepted block ~now:(now t)
      end;
      broadcast t (Messages.Block_announce block);
      inspect_block t block ~from
    end
  end

let handle_message t _net ~from ~tag:_ payload =
  match t.behavior with
  | Silent_censor -> () (* drops everything: the Fig. 6 faulty miner *)
  | _ -> begin
      match Messages.decode payload with
      | exception Lo_codec.Reader.Malformed _ -> ()
      | Messages.Submit tx ->
          submit_tx t tx;
          (* Acknowledge the client (Stage I step 3). A censoring miner
             sends the "fake acknowledgement" of the paper's attacker
             model: it acks but has dropped the transaction. *)
          let ack =
            Signer.sign t.signer (ack_signing_bytes ~txid:tx.Tx.id)
          in
          send_msg t ~dst:from
            (Messages.Submit_ack { txid = tx.Tx.id; ack_signature = ack })
      | Messages.Submit_ack _ -> () (* miners ignore stray acks *)
      | Messages.Commit_request { digest; delta; want; appended } ->
          handle_commit_request t ~from digest delta want appended
      | Messages.Commit_response { digest; want; delta; appended } ->
          handle_commit_response t ~from digest want delta appended
      | Messages.Tx_batch txs -> handle_tx_batch t ~from txs
      | Messages.Digest_share digest -> note_digest t digest
      | Messages.Digest_request { owner; seq } ->
          handle_digest_request t ~from owner seq
      | Messages.Digest_reply digests -> List.iter (note_digest t) digests
      | Messages.Suspicion_note note -> handle_suspicion t ~from note
      | Messages.Exposure_note evidence -> handle_exposure t evidence
      | Messages.Block_announce block -> accept_block t block ~from
    end

(* --- periodic timers --- *)

let rec reconcile_round t =
  let candidates =
    List.filter
      (fun i ->
        not (Accountability.is_exposed t.acc (Directory.id_of t.directory i)))
      t.neighbors
  in
  let chosen =
    Rng.sample_without_replacement t.rng t.config.reconcile_fanout candidates
  in
  List.iter (fun i -> reconcile_with t i) chosen;
  (* Keep probing one suspected peer per round so that a recovered node
     is eventually cleared (temporal accuracy, Sec. 3.2). *)
  (match Accountability.suspected_peers t.acc with
  | [] -> ()
  | suspected -> begin
      let peer, _ = Rng.pick_list t.rng suspected in
      match index_of_id t peer with
      | Some i -> reconcile_with ~force:true t i
      | None -> ()
    end);
  Network.schedule t.net ~delay:t.config.reconcile_period (fun _ ->
      reconcile_round t)

let rec digest_share_round t =
  (match t.neighbors with
  | [] -> ()
  | ns ->
      let target = Rng.pick_list t.rng ns in
      let target_id = Directory.id_of t.directory target in
      send_msg t ~dst:target
        (Messages.Digest_share
           (Commitment.Log.current_digest
              (log_for t ~peer_index:target)));
      (* Transitive commitment gossip: relay recently received
         third-party digests — this is what lets equivocation forks meet
         at a correct node. Forks re-converge as sets once both sides'
         transactions spread, so only snapshots from the divergence
         window are conflicting evidence; relaying digests while they
         are hot maximises the chance that both forks' window snapshots
         collide somewhere. *)
      let recent =
        Array.to_list t.recent_digests
        |> List.filter_map (fun d ->
               match d with
               | Some d when not (String.equal d.Commitment.owner target_id) ->
                   Some d
               | _ -> None)
      in
      (match recent with
      | [] -> ()
      | pool ->
          List.iter
            (fun d -> send_msg t ~dst:target (Messages.Digest_share d))
            (Rng.sample_without_replacement t.rng 2 pool)));
  Network.schedule t.net ~delay:t.config.digest_share_period (fun _ ->
      digest_share_round t)

let start t =
  (* Register through the mux so other protocols (the peer sampler) can
     share the node. *)
  Mux.register t.mux t.index ~proto:"lo" (handle_message t);
  match t.behavior with
  | Silent_censor -> ()
  | _ ->
      Network.schedule t.net
        ~delay:(Rng.float t.rng t.config.reconcile_period)
        (fun _ -> reconcile_round t);
      Network.schedule t.net
        ~delay:(Rng.float t.rng t.config.digest_share_period)
        (fun _ -> digest_share_round t)

(* --- block building --- *)

let bundles_of_sizes txids sizes =
  (* Regroup a flat txid list by bundle sizes. *)
  let rec go ids sizes acc =
    match sizes with
    | [] -> (List.rev acc, ids)
    | s :: rest ->
        let bundle = cap s ids in
        let remaining = List.filteri (fun i _ -> i >= s) ids in
        go remaining rest (bundle :: acc)
  in
  go txids sizes []

let apply_behavior t (out : Policy.build_output) =
  match t.behavior with
  | Block_injector -> begin
      (* Forge a fresh high-fee transaction and smuggle it into the
         front of the first non-empty bundle. *)
      let tx =
        Tx.create ~signer:t.signer ~fee:1_000_000 ~created_at:(now t)
          ~payload:(Lo_crypto.Sha256.digest ("inject" ^ string_of_int (Rng.int t.rng max_int)))
      in
      store_content t tx ~from_peer:None;
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let injected = ref false in
      let bundles =
        List.map
          (fun b ->
            if (not !injected) && b <> [] then begin
              injected := true;
              tx.Tx.id :: b
            end
            else b)
          bundles
      in
      if !injected then
        {
          out with
          txids = List.concat bundles @ appendix;
          bundle_sizes = List.map List.length bundles;
        }
      else out
    end
  | Block_reorderer -> begin
      (* Order inside bundles by fee, defeating the canonical shuffle. *)
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let fee_of txid =
        match Mempool.find_id t.mempool txid with
        | Some e -> e.Mempool.tx.Tx.fee
        | None -> 0
      in
      let bundles =
        List.map
          (fun b ->
            List.sort
              (fun a b ->
                match Int.compare (fee_of b) (fee_of a) with
                | 0 -> String.compare a b
                | c -> c)
              b)
          bundles
      in
      { out with txids = List.concat bundles @ appendix }
    end
  | Blockspace_censor pred -> begin
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let keep txid =
        match Mempool.find_id t.mempool txid with
        | Some e -> not (pred e.Mempool.tx)
        | None -> true
      in
      let bundles = List.map (List.filter keep) bundles in
      {
        out with
        txids = List.concat bundles @ appendix;
        bundle_sizes = List.map List.length bundles;
      }
    end
  | Honest | Silent_censor | Tx_censor _ | Equivocator -> out

let build_block t ~policy =
  let bundles =
    List.map
      (fun b -> (b.Commitment.Log.seq, b.Commitment.Log.ids))
      (Commitment.Log.bundles t.log)
  in
  let input =
    {
      Policy.bundles;
      find_tx =
        (fun id ->
          Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool id));
      is_settled = (fun id -> Hashtbl.mem t.settled id);
      fee_threshold = t.config.fee_threshold;
      max_txs = t.config.max_block_txs;
      seed = head_hash t;
    }
  in
  let out = Policy.build policy input in
  let out = apply_behavior t out in
  if out.Policy.txids = [] then None
  else begin
    let start_seq, commit_seq, bundle_sizes, appendix =
      match policy with
      | Policy.Lo_fifo ->
          ( out.Policy.start_seq,
            out.Policy.covered_seq,
            out.Policy.bundle_sizes,
            List.length out.Policy.txids
            - List.fold_left ( + ) 0 out.Policy.bundle_sizes )
      | Policy.Highest_fee -> (0, 0, [], List.length out.Policy.txids)
    in
    let block =
      Block.create ~signer:t.signer ~height:(chain_height t + 1)
        ~prev_hash:(head_hash t) ~start_seq ~commit_seq
        ~fee_threshold:t.config.fee_threshold
        ~txids:out.Policy.txids ~bundle_sizes ~appendix
        ~omissions:out.Policy.omissions ~timestamp:(now t)
    in
    (* Accept locally, then announce. *)
    let h = Block.hash block in
    Hashtbl.add t.seen_blocks h ();
    if not (Hashtbl.mem t.blocks_by_height block.Block.height) then begin
      Hashtbl.add t.blocks_by_height block.Block.height block;
      (match t.head with
      | Some head when head.Block.height >= block.Block.height -> ()
      | _ -> t.head <- Some block);
      List.iter
        (fun txid ->
          let id = Short_id.of_txid txid in
          if not (Hashtbl.mem t.settled id) then
            Hashtbl.add t.settled id block.Block.height)
        block.Block.txids;
      t.hooks.on_block_accepted block ~now:(now t)
    end;
    broadcast t (Messages.Block_announce block);
    Some block
  end
