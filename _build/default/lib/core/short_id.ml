let max_value = 0xFFFFFFFF

let of_txid txid =
  if String.length txid < 8 then invalid_arg "Short_id.of_txid: id too short";
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code txid.[i]
  done;
  (* Map the 62 usable bits onto [1, 2^32 - 1]. *)
  ((!v land max_int) mod max_value) + 1
