lib/core/messages.mli: Block Commitment Evidence Tx
