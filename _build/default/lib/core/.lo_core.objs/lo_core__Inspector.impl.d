lib/core/inspector.ml: Block Format Hashtbl Int List Order Set Short_id String Tx
