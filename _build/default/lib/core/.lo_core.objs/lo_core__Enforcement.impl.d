lib/core/enforcement.ml: Evidence Float Hashtbl Lo_codec Lo_crypto Option
