lib/core/policy.ml: Block Hashtbl Int List Order Short_id String Tx
