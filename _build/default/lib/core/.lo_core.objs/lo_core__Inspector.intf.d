lib/core/inspector.mli: Block Format Tx
