lib/core/directory.mli:
