lib/core/mempool.ml: Hashtbl List Tx
