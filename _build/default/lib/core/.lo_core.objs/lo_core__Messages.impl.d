lib/core/messages.ml: Block Commitment Evidence Lo_codec Lo_crypto String Tx
