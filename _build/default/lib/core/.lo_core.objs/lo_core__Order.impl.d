lib/core/order.ml: Int List Lo_codec Lo_crypto String
