lib/core/tx.mli: Format Lo_codec Lo_crypto
