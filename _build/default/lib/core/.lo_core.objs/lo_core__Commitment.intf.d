lib/core/commitment.mli: Lo_bloom Lo_codec Lo_crypto Lo_sketch
