lib/core/directory.ml: Array Hashtbl
