lib/core/block.ml: Float List Lo_codec Lo_crypto String
