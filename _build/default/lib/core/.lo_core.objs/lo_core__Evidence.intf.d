lib/core/evidence.mli: Block Commitment Lo_codec Lo_crypto Tx
