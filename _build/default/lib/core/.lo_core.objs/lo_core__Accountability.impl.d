lib/core/accountability.ml: Evidence Hashtbl Option
