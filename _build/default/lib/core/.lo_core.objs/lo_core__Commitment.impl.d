lib/core/commitment.ml: Array Hashtbl List Lo_bloom Lo_codec Lo_crypto Lo_sketch Short_id String
