lib/core/enforcement.mli: Evidence
