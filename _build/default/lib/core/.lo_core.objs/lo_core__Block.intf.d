lib/core/block.mli: Lo_codec Lo_crypto
