lib/core/order.mli:
