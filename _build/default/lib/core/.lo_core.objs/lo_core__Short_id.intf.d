lib/core/short_id.mli:
