lib/core/short_id.ml: Char String
