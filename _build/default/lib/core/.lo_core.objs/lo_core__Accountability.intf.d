lib/core/accountability.mli: Evidence
