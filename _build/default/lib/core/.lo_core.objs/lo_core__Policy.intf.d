lib/core/policy.mli: Block Tx
