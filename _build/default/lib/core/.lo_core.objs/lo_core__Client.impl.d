lib/core/client.ml: Array Hashtbl List Lo_codec Lo_crypto Lo_net Messages Node String Tx
