lib/core/evidence.ml: Block Commitment Int List Lo_codec Option Order Printf Set Short_id String Tx
