lib/core/node.mli: Accountability Block Commitment Directory Inspector Lo_crypto Lo_net Mempool Policy Tx
