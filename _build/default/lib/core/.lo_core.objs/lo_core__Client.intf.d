lib/core/client.mli: Lo_crypto Lo_net Tx
