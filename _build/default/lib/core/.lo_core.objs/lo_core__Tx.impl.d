lib/core/tx.ml: Float Format Lo_codec Lo_crypto Short_id String
