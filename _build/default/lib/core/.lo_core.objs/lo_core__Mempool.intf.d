lib/core/mempool.mli: Tx
