module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer

type config = {
  scheme : Signer.scheme;
  submit_fanout : int;
  ack_timeout : float;
  max_attempts : int;
}

let default_config scheme =
  { scheme; submit_fanout = 3; ack_timeout = 2.0; max_attempts = 3 }

type pending = {
  tx : Tx.t;
  mutable acks : (string, unit) Hashtbl.t; (* miner ids that acked *)
  mutable attempts : int;
  mutable contacted : int list; (* miner indices already tried *)
}

type t = {
  config : config;
  net : Network.t;
  index : int;
  signer : Signer.t;
  miners : (int * string) array;
  id_of_index : (int, string) Hashtbl.t;
  rng : Rng.t;
  pending : (string, pending) Hashtbl.t; (* by txid *)
  mutable on_ack : Tx.t -> now:float -> unit;
}

let create config ~net ~index ~signer ~miners =
  if miners = [] then invalid_arg "Client.create: no miners";
  let id_of_index = Hashtbl.create (List.length miners) in
  List.iter (fun (i, id) -> Hashtbl.replace id_of_index i id) miners;
  {
    config;
    net;
    index;
    signer;
    miners = Array.of_list miners;
    id_of_index;
    rng = Rng.split (Network.rng net);
    pending = Hashtbl.create 16;
    on_ack = (fun _ ~now:_ -> ());
  }

let on_acknowledged t f = t.on_ack <- f

let ack_count t ~txid =
  match Hashtbl.find_opt t.pending txid with
  | Some p -> Hashtbl.length p.acks
  | None -> 0

let attempts t ~txid =
  match Hashtbl.find_opt t.pending txid with
  | Some p -> p.attempts
  | None -> 0

let acknowledged t ~txid = ack_count t ~txid > 0

let send_wave t p =
  p.attempts <- p.attempts + 1;
  let fresh =
    Array.to_list t.miners
    |> List.filter (fun (i, _) -> not (List.mem i p.contacted))
    |> List.map fst
  in
  let pool = if fresh = [] then Array.to_list t.miners |> List.map fst else fresh in
  let targets =
    Rng.sample_without_replacement t.rng t.config.submit_fanout pool
  in
  p.contacted <- targets @ p.contacted;
  let payload = Messages.encode (Messages.Submit p.tx) in
  List.iter
    (fun dst ->
      Network.send t.net ~src:t.index ~dst ~tag:"lo:submit" payload)
    targets

let rec check_acks t txid =
  match Hashtbl.find_opt t.pending txid with
  | None -> ()
  | Some p ->
      if Hashtbl.length p.acks = 0 && p.attempts < t.config.max_attempts then begin
        send_wave t p;
        Network.schedule t.net ~delay:t.config.ack_timeout (fun _ ->
            check_acks t txid)
      end

let submit t ~fee ~payload =
  let tx =
    Tx.create ~signer:t.signer ~fee ~created_at:(Network.now t.net) ~payload
  in
  let p = { tx; acks = Hashtbl.create 4; attempts = 0; contacted = [] } in
  Hashtbl.replace t.pending tx.Tx.id p;
  send_wave t p;
  Network.schedule t.net ~delay:t.config.ack_timeout (fun _ ->
      check_acks t tx.Tx.id);
  tx

let handle t _net ~from ~tag payload =
  if String.equal tag "lo:submit-ack" then
    match Messages.decode payload with
    | exception Lo_codec.Reader.Malformed _ -> ()
    | Messages.Submit_ack { txid; ack_signature } -> begin
        match
          (Hashtbl.find_opt t.pending txid, Hashtbl.find_opt t.id_of_index from)
        with
        | Some p, Some miner_id ->
            if
              (not (Hashtbl.mem p.acks miner_id))
              && Signer.verify t.config.scheme ~id:miner_id
                   ~msg:(Node.ack_signing_bytes ~txid)
                   ~signature:ack_signature
            then begin
              let first = Hashtbl.length p.acks = 0 in
              Hashtbl.add p.acks miner_id ();
              if first then t.on_ack p.tx ~now:(Network.now t.net)
            end
        | _ -> ()
      end
    | _ -> ()

let start t = Network.set_handler t.net t.index (handle t)
