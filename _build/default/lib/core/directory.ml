type t = { ids : string array; index : (string, int) Hashtbl.t }

let create ~ids =
  let index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace index id i) ids;
  { ids; index }

let id_of t i = t.ids.(i)
let index_of t id = Hashtbl.find_opt t.index id
let size t = Array.length t.ids
