type violation =
  | Bad_structure of string
  | Injection of { bundle_seq : int option; short_id : int }
  | Reordering of { bundle_seq : int }
  | Blockspace_censorship of { bundle_seq : int; short_id : int }
  | False_omission_claim of { bundle_seq : int; short_id : int }

type report = {
  violations : violation list;
  unverified_bundles : int list;
  unverifiable_omissions : (int * int) list;
}

let clean report = report.violations = []

type knowledge = {
  bundle_of_seq : int -> int list option;
  find_tx : int -> Tx.t option;
  settled_height : int -> int option;
}

let expected_bundle_order block ~bundle_seq included =
  Order.sort_bundle ~seed:block.Block.prev_hash ~bundle_seq included

module Int_set = Set.Make (Int)

let inspect (block : Block.t) knowledge =
  let violations = ref [] in
  let unverified = ref [] in
  let unverifiable = ref [] in
  let push v = violations := v :: !violations in
  if not (Block.structure_ok block) then begin
    push (Bad_structure "inconsistent sizes");
    { violations = !violations; unverified_bundles = []; unverifiable_omissions = [] }
  end
  else begin
    let omission_reason =
      let tbl = Hashtbl.create 16 in
      List.iter (fun (id, r) -> Hashtbl.replace tbl id r) block.omissions;
      Hashtbl.find_opt tbl
    in
    (* Duplicate ids anywhere in the block are structurally invalid. *)
    let all_short = List.map Short_id.of_txid block.txids in
    let seen = Hashtbl.create 64 in
    List.iter
      (fun id ->
        if Hashtbl.mem seen id then push (Bad_structure "duplicate transaction")
        else Hashtbl.add seen id ())
      all_short;
    (* The skipped prefix must be genuinely settled: a creator cannot
       hide censorship behind a high [start_seq]. An id we cannot see as
       settled may simply mean our chain lags, so it is recorded as
       unverifiable rather than as a violation (accuracy first). *)
    for bundle_seq = 1 to block.start_seq do
      match knowledge.bundle_of_seq bundle_seq with
      | None -> ()
      | Some committed ->
          List.iter
            (fun id ->
              match knowledge.settled_height id with
              | Some h when h < block.height -> ()
              | Some _ | None -> unverifiable := (bundle_seq, id) :: !unverifiable)
            committed
    done;
    (* Per-bundle checks. *)
    List.iter
      (fun (bundle_seq, txids) ->
        match knowledge.bundle_of_seq bundle_seq with
        | None -> unverified := bundle_seq :: !unverified
        | Some committed ->
            let committed_set = Int_set.of_list committed in
            let block_ids = List.map Short_id.of_txid txids in
            let block_set = Int_set.of_list block_ids in
            (* Injections: in the block's bundle but never committed. *)
            Int_set.iter
              (fun id ->
                if not (Int_set.mem id committed_set) then
                  push (Injection { bundle_seq = Some bundle_seq; short_id = id }))
              block_set;
            (* Omissions: committed but absent. *)
            Int_set.iter
              (fun id ->
                if not (Int_set.mem id block_set) then
                  match omission_reason id with
                  | None ->
                      push (Blockspace_censorship { bundle_seq; short_id = id })
                  | Some Block.Low_fee -> begin
                      match knowledge.find_tx id with
                      | Some tx when tx.Tx.fee >= block.fee_threshold ->
                          push (False_omission_claim { bundle_seq; short_id = id })
                      | Some _ -> ()
                      | None -> unverifiable := (bundle_seq, id) :: !unverifiable
                    end
                  | Some Block.Missing_content ->
                      unverifiable := (bundle_seq, id) :: !unverifiable
                  | Some Block.Settled -> begin
                      (* Valid only if the id really is in an earlier
                         block of our chain. *)
                      match knowledge.settled_height id with
                      | Some h when h < block.height -> ()
                      | Some _ | None ->
                          unverifiable := (bundle_seq, id) :: !unverifiable
                    end)
              committed_set;
            (* Order: only meaningful if the sets agree. *)
            if Int_set.subset block_set committed_set then begin
              let included = Int_set.elements block_set in
              let expected = expected_bundle_order block ~bundle_seq included in
              if block_ids <> expected then push (Reordering { bundle_seq })
            end)
      (Block.bundle_txids block);
    (* Appendix: fresh transactions of the creator only. *)
    let committed_known seqs_id =
      (* true when the id is in a bundle we know about *)
      let rec go s =
        s <= block.commit_seq
        &&
        match knowledge.bundle_of_seq s with
        | Some ids when List.mem seqs_id ids -> true
        | _ -> go (s + 1)
      in
      go 1
    in
    List.iter
      (fun txid ->
        let id = Short_id.of_txid txid in
        if committed_known id then
          push (Injection { bundle_seq = None; short_id = id })
        else
          match knowledge.find_tx id with
          | Some tx when not (String.equal tx.Tx.origin block.creator) ->
              push (Injection { bundle_seq = None; short_id = id })
          | Some _ | None -> ())
      (Block.appendix_txids block);
    {
      violations = List.rev !violations;
      unverified_bundles = List.rev !unverified;
      unverifiable_omissions = List.rev !unverifiable;
    }
  end

let pp_violation fmt = function
  | Bad_structure s -> Format.fprintf fmt "bad-structure(%s)" s
  | Injection { bundle_seq = Some s; short_id } ->
      Format.fprintf fmt "injection(bundle %d, id %08x)" s short_id
  | Injection { bundle_seq = None; short_id } ->
      Format.fprintf fmt "injection(appendix, id %08x)" short_id
  | Reordering { bundle_seq } -> Format.fprintf fmt "reordering(bundle %d)" bundle_seq
  | Blockspace_censorship { bundle_seq; short_id } ->
      Format.fprintf fmt "censorship(bundle %d, id %08x)" bundle_seq short_id
  | False_omission_claim { bundle_seq; short_id } ->
      Format.fprintf fmt "false-omission(bundle %d, id %08x)" bundle_seq short_id
