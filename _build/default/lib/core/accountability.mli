(** Per-node blame bookkeeping: suspicions and exposures (paper
    Sec. 3.2).

    A suspicion is soft state — raised when a peer stops answering,
    cleared as soon as it answers — while an exposure is permanent and
    carries verifiable {!Evidence}. Accuracy demands that correct peers
    are never exposed and not perpetually suspected; completeness that
    misbehaving ones eventually are. The tests exercise both. *)

type suspicion = { since : float; reason : string }

type status =
  | Trusted
  | Suspected of suspicion
  | Exposed of Evidence.t

type t

val create : unit -> t
val status : t -> string -> status
val is_exposed : t -> string -> bool
val is_suspected : t -> string -> bool

val suspect : t -> peer:string -> now:float -> reason:string -> unit
(** No effect on an exposed peer; re-suspecting keeps the original
    [since] timestamp. *)

val clear_suspicion : t -> peer:string -> unit
(** No effect unless currently suspected. *)

val expose : t -> peer:string -> Evidence.t -> bool
(** [true] if this is a new exposure (first evidence wins). *)

val suspected_peers : t -> (string * suspicion) list
val exposed_peers : t -> (string * Evidence.t) list
val counts : t -> int * int
(** (suspected, exposed). *)
