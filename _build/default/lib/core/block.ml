module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer

type omission_reason = Low_fee | Missing_content | Settled

type t = {
  creator : string;
  height : int;
  prev_hash : string;
  start_seq : int;
  commit_seq : int;
  fee_threshold : int;
  txids : string list;
  bundle_sizes : int list;
  appendix : int;
  omissions : (int * omission_reason) list;
  timestamp : float;
  signature : string;
}

let genesis_hash = Lo_crypto.Sha256.digest "lo-genesis"

let reason_code = function Low_fee -> 0 | Missing_content -> 1 | Settled -> 2

let reason_of_code = function
  | 0 -> Low_fee
  | 1 -> Missing_content
  | 2 -> Settled
  | _ -> raise (Reader.Malformed "omission reason")

let encode_unsigned w t =
  Writer.fixed w t.creator;
  Writer.varint w t.height;
  Writer.fixed w t.prev_hash;
  Writer.varint w t.start_seq;
  Writer.varint w t.commit_seq;
  Writer.varint w t.fee_threshold;
  Writer.list w (Writer.fixed w) t.txids;
  Writer.list w (Writer.varint w) t.bundle_sizes;
  Writer.varint w t.appendix;
  Writer.list w
    (fun (id, reason) ->
      Writer.u32 w id;
      Writer.u8 w (reason_code reason))
    t.omissions;
  Writer.u64 w (int_of_float (Float.round (t.timestamp *. 1e6)))

let encode w t =
  encode_unsigned w t;
  Writer.fixed w t.signature

let signing_bytes t =
  let w = Writer.create ~initial_size:256 () in
  encode_unsigned w t;
  Writer.contents w

let hash t =
  let w = Writer.create ~initial_size:256 () in
  encode w t;
  Lo_crypto.Sha256.digest (Writer.contents w)

let structure_ok t =
  t.height >= 0 && t.start_seq >= 0 && t.commit_seq >= t.start_seq
  && t.fee_threshold >= 0
  && t.appendix >= 0
  && List.length t.bundle_sizes = t.commit_seq - t.start_seq
  && List.for_all (fun s -> s >= 0) t.bundle_sizes
  && List.fold_left ( + ) 0 t.bundle_sizes + t.appendix = List.length t.txids
  && String.length t.prev_hash = 32
  && List.for_all (fun id -> String.length id = 32) t.txids

let create ~signer ~height ~prev_hash ~start_seq ~commit_seq ~fee_threshold
    ~txids ~bundle_sizes ~appendix ~omissions ~timestamp =
  let unsigned =
    {
      creator = Signer.id signer;
      height;
      prev_hash;
      start_seq;
      commit_seq;
      fee_threshold;
      txids;
      bundle_sizes;
      appendix;
      omissions;
      timestamp;
      signature = String.make Signer.signature_size '\000';
    }
  in
  if not (structure_ok unsigned) then invalid_arg "Block.create: bad structure";
  let signature = Signer.sign signer (signing_bytes unsigned) in
  { unsigned with signature }

let decode r =
  let creator = Reader.fixed r Signer.id_size in
  let height = Reader.varint r in
  let prev_hash = Reader.fixed r 32 in
  let start_seq = Reader.varint r in
  let commit_seq = Reader.varint r in
  let fee_threshold = Reader.varint r in
  let txids = Reader.list r (fun r -> Reader.fixed r 32) in
  let bundle_sizes = Reader.list r Reader.varint in
  let appendix = Reader.varint r in
  let omissions =
    Reader.list r (fun r ->
        let id = Reader.u32 r in
        let reason = reason_of_code (Reader.u8 r) in
        (id, reason))
  in
  let timestamp = float_of_int (Reader.u64 r) /. 1e6 in
  let signature = Reader.fixed r Signer.signature_size in
  let t =
    {
      creator;
      height;
      prev_hash;
      start_seq;
      commit_seq;
      fee_threshold;
      txids;
      bundle_sizes;
      appendix;
      omissions;
      timestamp;
      signature;
    }
  in
  if not (structure_ok t) then raise (Reader.Malformed "block structure");
  t

let to_string t =
  let w = Writer.create ~initial_size:256 () in
  encode w t;
  Writer.contents w

let of_string s =
  let r = Reader.of_string s in
  let t = decode r in
  Reader.expect_end r;
  t

let encoded_size t = String.length (to_string t)

let verify_signature scheme t =
  Signer.verify scheme ~id:t.creator ~msg:(signing_bytes t)
    ~signature:t.signature

let bundle_txids t =
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> invalid_arg "Block.bundle_txids: short id list"
      | x :: rest ->
          let taken, remaining = take (n - 1) rest in
          (x :: taken, remaining)
  in
  let rec go seq sizes ids acc =
    match sizes with
    | [] -> List.rev acc
    | size :: rest ->
        let bundle, remaining = take size ids in
        go (seq + 1) rest remaining ((seq, bundle) :: acc)
  in
  go (t.start_seq + 1) t.bundle_sizes t.txids []

let appendix_txids t =
  let committed = List.fold_left ( + ) 0 t.bundle_sizes in
  List.filteri (fun i _ -> i >= committed) t.txids
