(** Transferable proofs of misbehaviour ("exposures", paper Sec. 3.2 and
    5.2).

    Evidence must be verifiable by any third party from signed material
    alone: either two commitments by the same owner that cannot both be
    honest, or a signed block contradicting a signed commitment pair.
    [verify] re-derives everything; a node receiving an exposure message
    never takes the sender's word for it. *)

type t =
  | Conflicting_digests of {
      older : Commitment.digest;
      newer : Commitment.digest;
    }  (** equivocation / withholding: [newer] does not extend [older] *)
  | Block_bundle_violation of {
      block : Block.t;
      older : Commitment.digest;
      newer : Commitment.digest;
      omitted_tx : Tx.t option;
          (** present for a censorship/false-omission proof: the
              committed transaction the block left out *)
    }

val accused : t -> string

val verify : Lo_crypto.Signer.scheme -> t -> bool
(** Sound: returns [true] only if the accused really signed
    contradictory material. Inconclusive sketch decodes make evidence
    invalid rather than accepted. *)

val encode : Lo_codec.Writer.t -> t -> unit
val decode : Lo_codec.Reader.t -> t
val describe : t -> string
