module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t =
  | Conflicting_digests of {
      older : Commitment.digest;
      newer : Commitment.digest;
    }
  | Block_bundle_violation of {
      block : Block.t;
      older : Commitment.digest;
      newer : Commitment.digest;
      omitted_tx : Tx.t option;
    }

let accused = function
  | Conflicting_digests { older; _ } -> older.Commitment.owner
  | Block_bundle_violation { block; _ } -> block.Block.creator

module Int_set = Set.Make (Int)

let verify_conflicting scheme ~older ~newer =
  String.equal older.Commitment.owner newer.Commitment.owner
  && older.Commitment.seq <= newer.Commitment.seq
  && Commitment.verify scheme older
  && Commitment.verify scheme newer
  && Commitment.check_extension ~older ~newer () = Commitment.Inconsistent

let verify_block_violation scheme ~block ~older ~newer ~omitted_tx =
  let open Commitment in
  String.equal older.owner block.Block.creator
  && String.equal newer.owner block.Block.creator
  && newer.seq = older.seq + 1
  && newer.seq <= block.Block.commit_seq
  && Block.verify_signature scheme block
  && Commitment.verify scheme older
  && Commitment.verify scheme newer
  &&
  match check_extension ~older ~newer () with
  | Inconsistent | Inconclusive | Plausible -> false
  | Consistent bundle ->
      let bundle_seq = newer.seq in
      let bundle_set = Int_set.of_list bundle in
      let block_bundle =
        List.assoc_opt bundle_seq (Block.bundle_txids block)
        |> Option.value ~default:[]
      in
      let block_ids = List.map Short_id.of_txid block_bundle in
      let block_set = Int_set.of_list block_ids in
      let omission_reason id = List.assoc_opt id block.Block.omissions in
      begin
        match omitted_tx with
        | Some tx ->
            (* Censorship proof: committed, fee-eligible, yet absent
               without a sustainable excuse. *)
            let id = Tx.short_id tx in
            Int_set.mem id bundle_set
            && (not (Int_set.mem id block_set))
            && tx.Tx.fee >= block.Block.fee_threshold
            && (match omission_reason id with
               | None | Some Block.Low_fee -> true
               | Some Block.Missing_content | Some Block.Settled -> false)
        | None ->
            (* Injection or re-ordering proof, recomputed from the
               decoded bundle. *)
            let injected =
              Int_set.exists (fun id -> not (Int_set.mem id bundle_set)) block_set
            in
            let reordered =
              Int_set.subset block_set bundle_set
              &&
              let included = Int_set.elements block_set in
              let expected =
                Order.sort_bundle ~seed:block.Block.prev_hash ~bundle_seq
                  included
              in
              block_ids <> expected
            in
            injected || reordered
      end

let verify scheme = function
  | Conflicting_digests { older; newer } ->
      verify_conflicting scheme ~older ~newer
  | Block_bundle_violation { block; older; newer; omitted_tx } ->
      verify_block_violation scheme ~block ~older ~newer ~omitted_tx

let encode w = function
  | Conflicting_digests { older; newer } ->
      Writer.u8 w 0;
      Commitment.encode w older;
      Commitment.encode w newer
  | Block_bundle_violation { block; older; newer; omitted_tx } ->
      Writer.u8 w 1;
      Writer.bytes w (Block.to_string block);
      Commitment.encode w older;
      Commitment.encode w newer;
      (match omitted_tx with
      | None -> Writer.u8 w 0
      | Some tx ->
          Writer.u8 w 1;
          Tx.encode w tx)

let decode r =
  match Reader.u8 r with
  | 0 ->
      let older = Commitment.decode r in
      let newer = Commitment.decode r in
      Conflicting_digests { older; newer }
  | 1 ->
      let block = Block.of_string (Reader.bytes r) in
      let older = Commitment.decode r in
      let newer = Commitment.decode r in
      let omitted_tx =
        match Reader.u8 r with
        | 0 -> None
        | 1 -> Some (Tx.decode r)
        | _ -> raise (Reader.Malformed "evidence omitted-tx flag")
      in
      Block_bundle_violation { block; older; newer; omitted_tx }
  | _ -> raise (Reader.Malformed "evidence kind")

let describe = function
  | Conflicting_digests { older; newer } ->
      Printf.sprintf "conflicting digests (seq %d vs %d)" older.Commitment.seq
        newer.Commitment.seq
  | Block_bundle_violation { block; newer; omitted_tx; _ } ->
      Printf.sprintf "block %d violates bundle %d%s" block.Block.height
        newer.Commitment.seq
        (match omitted_tx with Some _ -> " (censorship)" | None -> "")
