(** Block inspection (paper Sec. 4.3, step 5, and Sec. 5.2).

    Inspection replays the deterministic block-building rules against
    the inspector's view of the creator's commitments and flags every
    deviation. It is separate from consensus validation: a block may
    still enter the chain, but a violation exposes its creator. *)

type violation =
  | Bad_structure of string
  | Injection of { bundle_seq : int option; short_id : int }
      (** id present in the block but never committed at that position
          ([None] = invalid appendix entry). *)
  | Reordering of { bundle_seq : int }
  | Blockspace_censorship of { bundle_seq : int; short_id : int }
      (** committed id silently missing from the block *)
  | False_omission_claim of { bundle_seq : int; short_id : int }
      (** omission claimed [Low_fee] but the content shows a fee at or
          above the declared threshold *)

type report = {
  violations : violation list;
  unverified_bundles : int list;
      (** bundle seqs the inspector lacks commitments for — to be
          requested from peers *)
  unverifiable_omissions : (int * int) list;
      (** (bundle seq, short id) omitted with a [Missing_content] claim;
          not disprovable offline, tracked as suspicion material *)
}

val clean : report -> bool

type knowledge = {
  bundle_of_seq : int -> int list option;
      (** creator's committed bundle (short ids) for a sequence number,
          as reconstructed from its signed digests *)
  find_tx : int -> Tx.t option;  (** content lookup by short id *)
  settled_height : int -> int option;
      (** chain height at which a short id was settled, if any — used to
          validate [Settled] omission claims *)
}

val inspect : Block.t -> knowledge -> report

val expected_bundle_order : Block.t -> bundle_seq:int -> int list -> int list
(** Canonical order of the given included short ids for one bundle of
    this block (seed = previous block hash). *)

val pp_violation : Format.formatter -> violation -> unit
