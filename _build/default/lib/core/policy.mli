(** Block-building policies (Table 1 and Fig. 8).

    [Lo_fifo] is the paper's verifiable canonical build: all committed
    bundles in order, fee threshold applied, intra-bundle canonical
    shuffle. [Highest_fee] is the incumbent policy of public
    blockchains — pick the most profitable transactions regardless of
    arrival order — used as the baseline in Fig. 8 (left). *)

type t = Lo_fifo | Highest_fee

val to_string : t -> string

type build_input = {
  bundles : (int * int list) list;  (** (seq, committed short ids) *)
  find_tx : int -> Tx.t option;
  is_settled : int -> bool;
      (** already included in an earlier block of the chain *)
  fee_threshold : int;
  max_txs : int;  (** blockspace cap *)
  seed : string;  (** previous block hash *)
}

type build_output = {
  txids : string list;  (** block order *)
  bundle_sizes : int list;
  omissions : (int * Block.omission_reason) list;
  start_seq : int;  (** fully settled bundle prefix, skipped entirely *)
  covered_seq : int;
}

val build : t -> build_input -> build_output
(** For [Highest_fee] the bundle structure is ignored: the result has
    [covered_seq = 0] and everything in one implicit sequence (such
    blocks fail LØ inspection by construction, which is the point of the
    comparison). Blockspace overflow under [Lo_fifo] truncates whole
    trailing bundles and is reported via [covered_seq]. *)
