type policy = {
  slash_fraction : float;
  min_stake : int;
  disconnect_for : float;
}

let default_policy =
  { slash_fraction = 0.5; min_stake = 1; disconnect_for = 30.0 }

type account = {
  mutable stake : int;
  mutable disconnected_until : float option;
  seen_evidence : (string, unit) Hashtbl.t; (* hash of applied proofs *)
}

type t = {
  policy : policy;
  accounts : (string, account) Hashtbl.t;
  mutable slashed : int;
}

let create ?(policy = default_policy) () =
  if policy.slash_fraction < 0. || policy.slash_fraction > 1. then
    invalid_arg "Enforcement.create: slash_fraction";
  { policy; accounts = Hashtbl.create 64; slashed = 0 }

let register t ~id ~stake =
  if stake < 0 then invalid_arg "Enforcement.register: negative stake";
  Hashtbl.replace t.accounts id
    {
      stake;
      disconnected_until = None;
      seen_evidence = Hashtbl.create 4;
    }

let stake t ~id =
  match Hashtbl.find_opt t.accounts id with
  | Some a -> a.stake
  | None -> 0

let disconnected_until t ~id =
  match Hashtbl.find_opt t.accounts id with
  | Some a -> a.disconnected_until
  | None -> None

let is_eligible t ~id =
  match Hashtbl.find_opt t.accounts id with
  | None -> false
  | Some a -> a.stake >= t.policy.min_stake && a.disconnected_until = None

let evidence_key evidence =
  let w = Lo_codec.Writer.create () in
  Evidence.encode w evidence;
  Lo_crypto.Sha256.digest (Lo_codec.Writer.contents w)

let punish t ~id evidence ~now =
  match Hashtbl.find_opt t.accounts id with
  | None -> ()
  | Some a ->
      let key = evidence_key evidence in
      if not (Hashtbl.mem a.seen_evidence key) then begin
        Hashtbl.add a.seen_evidence key ();
        let burned =
          int_of_float
            (Float.round (t.policy.slash_fraction *. float_of_int a.stake))
        in
        a.stake <- a.stake - burned;
        t.slashed <- t.slashed + burned;
        if t.policy.disconnect_for > 0. then
          a.disconnected_until <-
            Some
              (Float.max
                 (Option.value a.disconnected_until ~default:0.)
                 (now +. t.policy.disconnect_for))
      end

let tick t ~now =
  Hashtbl.iter
    (fun _ a ->
      match a.disconnected_until with
      | Some until when until <= now -> a.disconnected_until <- None
      | _ -> ())
    t.accounts

let slashed_total t = t.slashed

let eligible_ids t =
  Hashtbl.fold
    (fun id _ acc -> if is_eligible t ~id then id :: acc else acc)
    t.accounts []
