type entry = {
  tx : Tx.t;
  short_id : int;
  received_at : float;
  from_peer : string option;
}

type t = {
  by_short : (int, entry) Hashtbl.t;
  by_id : (string, entry) Hashtbl.t;
  mutable arrival_rev : entry list;
  mutable payload_bytes : int;
}

let create () =
  {
    by_short = Hashtbl.create 512;
    by_id = Hashtbl.create 512;
    arrival_rev = [];
    payload_bytes = 0;
  }

let size t = Hashtbl.length t.by_short

let add t ~tx ~received_at ~from_peer =
  let short_id = Tx.short_id tx in
  if Hashtbl.mem t.by_short short_id then `Duplicate
  else begin
    let entry = { tx; short_id; received_at; from_peer } in
    Hashtbl.add t.by_short short_id entry;
    Hashtbl.add t.by_id tx.Tx.id entry;
    t.arrival_rev <- entry :: t.arrival_rev;
    t.payload_bytes <- t.payload_bytes + Tx.encoded_size tx;
    `Added entry
  end

let mem_short t short_id = Hashtbl.mem t.by_short short_id
let find_short t short_id = Hashtbl.find_opt t.by_short short_id
let find_id t id = Hashtbl.find_opt t.by_id id
let entries_in_arrival_order t = List.rev t.arrival_rev
let total_payload_bytes t = t.payload_bytes
