type suspicion = { since : float; reason : string }
type status = Trusted | Suspected of suspicion | Exposed of Evidence.t
type t = { table : (string, status) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let status t peer =
  Option.value (Hashtbl.find_opt t.table peer) ~default:Trusted

let is_exposed t peer = match status t peer with Exposed _ -> true | _ -> false

let is_suspected t peer =
  match status t peer with Suspected _ -> true | _ -> false

let suspect t ~peer ~now ~reason =
  match status t peer with
  | Exposed _ | Suspected _ -> ()
  | Trusted -> Hashtbl.replace t.table peer (Suspected { since = now; reason })

let clear_suspicion t ~peer =
  match status t peer with
  | Suspected _ -> Hashtbl.remove t.table peer
  | Trusted | Exposed _ -> ()

let expose t ~peer evidence =
  match status t peer with
  | Exposed _ -> false
  | Trusted | Suspected _ ->
      Hashtbl.replace t.table peer (Exposed evidence);
      true

let suspected_peers t =
  Hashtbl.fold
    (fun peer st acc ->
      match st with Suspected s -> (peer, s) :: acc | _ -> acc)
    t.table []

let exposed_peers t =
  Hashtbl.fold
    (fun peer st acc -> match st with Exposed e -> (peer, e) :: acc | _ -> acc)
    t.table []

let counts t =
  Hashtbl.fold
    (fun _ st (s, e) ->
      match st with
      | Suspected _ -> (s + 1, e)
      | Exposed _ -> (s, e + 1)
      | Trusted -> (s, e))
    t.table (0, 0)
