(** Enforcement policies on top of detection (paper Sec. 5.4).

    LØ itself only detects and attributes misbehaviour; what happens to
    an exposed miner depends on the consensus layer. This module
    implements the paper's suggested mechanisms so deployments and
    experiments can study them end to end:

    - {b stake slashing} (PoS): an exposed miner loses a fraction of its
      stake per distinct exposure;
    - {b reputation slashing}: the multiplicative analogue for
      reputation-based validator selection;
    - {b network-level penalties}: temporary disconnection, realised in
      simulations by dropping an exposed peer from overlay neighbour
      sets;
    - {b block rejection}: blocks from exposed creators are refused
      (enabled on the node via [Node.config.reject_exposed_blocks]).

    All state is per-observer: in a permissionless network every node
    draws its own conclusions from the evidence it verified, and
    identical evidence yields identical decisions everywhere. *)

type policy = {
  slash_fraction : float;
      (** stake fraction burned per exposure (paper cites Casper-style
          slashing); 0.0 disables *)
  min_stake : int;  (** below this the miner is no longer eligible *)
  disconnect_for : float;
      (** seconds of network-level disconnection per exposure; 0.0
          disables *)
}

val default_policy : policy
(** 50 % slash, eligibility floor 1, 30 s disconnection. *)

type t

val create : ?policy:policy -> unit -> t

val register : t -> id:string -> stake:int -> unit
(** Introduce a miner with its initial stake (validator deposit). *)

val stake : t -> id:string -> int
val is_eligible : t -> id:string -> bool
(** Eligible = registered, stake above the floor, and not currently
    disconnected. *)

val punish : t -> id:string -> Evidence.t -> now:float -> unit
(** Apply the policy for one verified exposure. Idempotent per evidence
    content: re-applying the same proof does not slash twice. *)

val disconnected_until : t -> id:string -> float option
val tick : t -> now:float -> unit
(** Re-admit peers whose disconnection expired. *)

val slashed_total : t -> int
(** Total stake burned so far (goes to the protocol, as in PoS
    slashing). *)

val eligible_ids : t -> string list
