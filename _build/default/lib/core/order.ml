let bundle_key ~seed ~bundle_seq id =
  let w = Lo_codec.Writer.create ~initial_size:16 () in
  Lo_codec.Writer.varint w bundle_seq;
  Lo_codec.Writer.u32 w id;
  Lo_crypto.Hmac.sha256 ~key:seed (Lo_codec.Writer.contents w)

let sort_bundle ~seed ~bundle_seq ids =
  let keyed =
    List.map (fun id -> (bundle_key ~seed ~bundle_seq id, id)) ids
  in
  let compare (ka, ia) (kb, ib) =
    match String.compare ka kb with 0 -> Int.compare ia ib | c -> c
  in
  List.map snd (List.sort compare keyed)

let canonical ~seed ~bundles =
  bundles
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.concat_map (fun (bundle_seq, ids) ->
         sort_bundle ~seed ~bundle_seq ids)
