(** Client-side transaction submission (Stage I of the paper's
    pipeline).

    A client signs its transaction, shares it with a configurable subset
    of miners it knows (paper: "a subset of peers that it personally
    knows"), collects the optional signed acknowledgements (step 3), and
    resubmits to fresh miners if too few acknowledgements arrive before
    a timeout — which is exactly what defeats Stage-I censorship by a
    single faulty miner: the transaction reaches an honest miner with
    overwhelming probability, after which LØ's commitments take over.

    A client occupies its own simulator node index; it speaks only
    [Submit]/[Submit_ack]. *)

type config = {
  scheme : Lo_crypto.Signer.scheme;
  submit_fanout : int;  (** miners contacted per attempt (default 3) *)
  ack_timeout : float;  (** seconds before resubmitting (default 2 s) *)
  max_attempts : int;  (** total submission waves (default 3) *)
}

val default_config : Lo_crypto.Signer.scheme -> config

type t

val create :
  config ->
  net:Lo_net.Network.t ->
  index:int ->
  signer:Lo_crypto.Signer.t ->
  miners:(int * string) list ->
  t
(** [miners] are (simulator index, identity) pairs the client knows. *)

val start : t -> unit

val submit : t -> fee:int -> payload:string -> Tx.t
(** Create, sign and send a transaction to [submit_fanout] random
    miners; returns it for tracking. *)

val ack_count : t -> txid:string -> int
(** Verified acknowledgements received for one of our transactions. *)

val attempts : t -> txid:string -> int
val acknowledged : t -> txid:string -> bool
(** At least one verified acknowledgement. *)

val on_acknowledged : t -> (Tx.t -> now:float -> unit) -> unit
(** Fires on the first verified acknowledgement per transaction. *)
