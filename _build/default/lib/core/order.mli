(** Verifiable canonical transaction order (paper Sec. 4.3).

    Bundles are laid out in commitment order; inside a bundle the order
    is pseudo-random but deterministic: ids are sorted by a keyed hash
    whose key is derived from the previous block hash (the "order seed")
    and the bundle sequence number. Any node holding the same seed and
    bundle sets reproduces the exact same order, which is what makes
    re-ordering detectable. *)

val bundle_key : seed:string -> bundle_seq:int -> int -> string
(** The sort key of one short id within one bundle. *)

val sort_bundle : seed:string -> bundle_seq:int -> int list -> int list
(** Deterministic shuffle of a bundle's short ids. *)

val canonical : seed:string -> bundles:(int * int list) list -> int list
(** Full canonical sequence: bundles ordered by their sequence number,
    each internally shuffled. Input bundles need not be pre-sorted. *)
