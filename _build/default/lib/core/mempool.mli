(** Node-local transaction store.

    Holds the content of every valid transaction a node has ever seen
    (LØ's "Inclusion of All Transactions" policy makes the store
    append-only), indexed by short id, together with reception
    metadata. *)

type entry = {
  tx : Tx.t;
  short_id : int;
  received_at : float;
  from_peer : string option;  (** None when submitted directly (Stage I) *)
}

type t

val create : unit -> t
val size : t -> int

val add :
  t -> tx:Tx.t -> received_at:float -> from_peer:string option ->
  [ `Added of entry | `Duplicate ]
(** [`Duplicate] covers both a repeated transaction and the (negligible
    but handled) short-id collision with a different transaction. *)

val mem_short : t -> int -> bool
val find_short : t -> int -> entry option
val find_id : t -> string -> entry option
val entries_in_arrival_order : t -> entry list
val total_payload_bytes : t -> int
(** Cumulative stored transaction bytes (storage-overhead metric). *)
