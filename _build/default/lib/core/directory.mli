(** Identity directory for simulations: maps between dense simulator
    node indices and 33-byte signer identities. Plays the role of the
    paper's bootstrap nodes' membership knowledge. *)

type t

val create : ids:string array -> t
val id_of : t -> int -> string
val index_of : t -> string -> int option
val size : t -> int
