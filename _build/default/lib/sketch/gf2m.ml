type t = {
  m : int;
  full : int;
  mask : int;
  mod_shifts : int array; (* set-bit positions of the low modulus terms *)
  scratch : int array; (* 16-entry window table reused across mul calls *)
}

let bits f = f.m
let mask f = f.mask
let order_minus_one f = f.mask
let add a b = a lxor b

(* Reduce a carryless product (degree <= 2m-2 <= 62, so it fits a native
   int) modulo x^m + modulus: fold the high part down through the sparse
   low terms until everything is below degree m. *)
let reduce f p =
  let p = ref p in
  while !p lsr f.m <> 0 do
    let hi = !p lsr f.m in
    let lo = !p land f.mask in
    let folded = ref lo in
    Array.iter (fun s -> folded := !folded lxor (hi lsl s)) f.mod_shifts;
    p := !folded
  done;
  !p

(* Carryless multiplication with a 4-bit window, then reduction. With
   a, b < 2^32 the raw product has degree <= 62 and fits a 63-bit int. *)
let mul f a b =
  if a = 0 || b = 0 then 0
  else begin
    let tab = f.scratch in
    tab.(1) <- a;
    tab.(2) <- a lsl 1;
    tab.(3) <- tab.(2) lxor a;
    tab.(4) <- a lsl 2;
    tab.(5) <- tab.(4) lxor a;
    tab.(6) <- tab.(4) lxor tab.(2);
    tab.(7) <- tab.(6) lxor a;
    tab.(8) <- a lsl 3;
    tab.(9) <- tab.(8) lxor a;
    tab.(10) <- tab.(8) lxor tab.(2);
    tab.(11) <- tab.(10) lxor a;
    tab.(12) <- tab.(8) lxor tab.(4);
    tab.(13) <- tab.(12) lxor a;
    tab.(14) <- tab.(12) lxor tab.(2);
    tab.(15) <- tab.(14) lxor a;
    (* Top nibble of [b] is handled unshifted so no intermediate exceeds
       degree 62. *)
    let p = ref tab.((b lsr 28) land 0xF) in
    for i = 6 downto 0 do
      p := (!p lsl 4) lxor tab.((b lsr (4 * i)) land 0xF)
    done;
    reduce f !p
  end

(* Squaring = spreading each bit to the even positions; an 8-bit spread
   table does it in four lookups. *)
let spread8 =
  Array.init 256 (fun b ->
      let v = ref 0 in
      for i = 0 to 7 do
        if b lsr i land 1 = 1 then v := !v lor (1 lsl (2 * i))
      done;
      !v)

let sq f a =
  let p =
    spread8.(a land 0xFF)
    lor (spread8.((a lsr 8) land 0xFF) lsl 16)
    lor (spread8.((a lsr 16) land 0xFF) lsl 32)
  in
  let hi = (a lsr 24) land 0xFF in
  if hi = 0 then reduce f p
  else begin
    (* Bits 48..62 of the square come from bits 24..31 of [a]; bit 31
       would land on position 62, still inside a native int. *)
    let p_hi = spread8.(hi) in
    reduce f (p lor (p_hi lsl 48))
  end

let pow f a k =
  if k < 0 then invalid_arg "Gf2m.pow: negative exponent";
  let r = ref 1 and base = ref a and k = ref k in
  while !k <> 0 do
    if !k land 1 = 1 then r := mul f !r !base;
    base := sq f !base;
    k := !k lsr 1
  done;
  !r

let inv f a =
  if a = 0 then raise Division_by_zero;
  pow f a (f.mask - 1)

let div f a b = mul f a (inv f b)

let trace f a =
  let acc = ref 0 and cur = ref a in
  for _ = 1 to f.m do
    acc := !acc lxor !cur;
    cur := sq f !cur
  done;
  !acc

(* Irreducibility check for x^m + modulus over GF(2): f is irreducible
   iff x^(2^m) = x (mod f) and gcd(x^(2^(m/p)) - x, f) = 1 for every
   prime p dividing m. We work in the quotient ring via this very field
   representation, which is sound for the Frobenius computations even
   before irreducibility is established. *)
let frobenius_iterate f times =
  (* x^(2^times) in the quotient ring, starting from the element x = 2. *)
  let cur = ref 2 in
  for _ = 1 to times do
    cur := sq f !cur
  done;
  !cur

let prime_divisors m =
  let rec go m p acc =
    if p * p > m then if m > 1 then m :: acc else acc
    else if m mod p = 0 then
      let rec strip m = if m mod p = 0 then strip (m / p) else m in
      go (strip m) (p + 1) (p :: acc)
    else go m (p + 1) acc
  in
  go m 2 []

(* gcd(poly represented by [a] (an element = low-degree poly), f) where f
   is the reduction polynomial of full degree m. Polynomial gcd over
   GF(2) on plain ints. *)
let gcd_with_modulus f a =
  let deg v =
    let rec go d = if v lsr d = 0 then d - 1 else go (d + 1) in
    if v = 0 then -1 else go 1
  in
  let rec gcd a b =
    if b = 0 then a
    else begin
      (* a mod b by long division over GF(2) *)
      let db = deg b in
      let a = ref a in
      while deg !a >= db do
        a := !a lxor (b lsl (deg !a - db))
      done;
      gcd b !a
    end
  in
  gcd f.full a

let is_irreducible f =
  frobenius_iterate f f.m = 2
  && List.for_all
       (fun p ->
         let x_frob = frobenius_iterate f (f.m / p) in
         gcd_with_modulus f (x_frob lxor 2) = 1)
       (prime_divisors f.m)

let make ~m ~modulus =
  if m < 2 || m > 32 then invalid_arg "Gf2m.make: m out of [2,32]";
  if modulus land 1 = 0 then invalid_arg "Gf2m.make: modulus must have constant term";
  if modulus lsr m <> 0 then invalid_arg "Gf2m.make: modulus degree too high";
  let mod_shifts =
    List.filter (fun s -> modulus lsr s land 1 = 1) (List.init m Fun.id)
    |> Array.of_list
  in
  let f =
    {
      m;
      full = (1 lsl m) lor modulus;
      mask = (1 lsl m) - 1;
      mod_shifts;
      scratch = Array.make 16 0;
    }
  in
  if not (is_irreducible f) then invalid_arg "Gf2m.make: reducible polynomial";
  f

let gf8 = make ~m:8 ~modulus:0x1B
let gf16 = make ~m:16 ~modulus:0x2B
let gf32 = make ~m:32 ~modulus:0x8D
