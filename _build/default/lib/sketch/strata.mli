(** Strata difference estimator (Eppstein, Goodrich, Uyeda & Varghese,
    "What's the difference?", SIGCOMM'11 — the paper's reference [16]).

    Estimates the size of the symmetric difference of two sets without
    knowing it in advance, so a reconciler can size its PinSketch
    capacity before paying for it. Elements are hashed into strata by
    the number of trailing zero bits (stratum i holds ~1/2^(i+1) of the
    elements); each stratum carries a small fixed-capacity sketch.
    Decoding strata from the sparsest down and scaling the first failure
    yields an unbiased estimate within a small constant factor.

    LØ's commitments use the Bloom clock for this job (it is cheaper and
    exact for honest extensions); the strata estimator is the
    general-purpose alternative when no clock is available, and is used
    by tests as an independent cross-check. *)

type t

val create :
  ?field:Gf2m.t -> ?strata:int -> ?capacity_per_stratum:int -> unit -> t
(** Default: GF(2^32), 24 strata, capacity 8 per stratum (~800 bytes). *)

val add : t -> int -> unit
(** @raise Invalid_argument on 0 or out-of-field elements. *)

val add_all : t -> int list -> unit
val of_list : ?field:Gf2m.t -> ?strata:int -> ?capacity_per_stratum:int -> int list -> t

val estimate : t -> t -> int
(** Estimated symmetric-difference size between the two underlying sets.
    @raise Invalid_argument on mismatched parameters. *)

val serialized_size : t -> int
val encode : Lo_codec.Writer.t -> t -> unit
val decode_wire : ?field:Gf2m.t -> Lo_codec.Reader.t -> t
