module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t = { field : Gf2m.t; strata : Sketch.t array }

(* Mix the element before counting trailing zeros so the stratum choice
   is independent of any structure in the ids themselves. *)
let mix id =
  let z = Int64.mul (Int64.of_int id) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 27)) land max_int

let stratum_of t id =
  let h = mix id in
  let rec tz i = if i >= Array.length t.strata - 1 || h lsr i land 1 = 1 then i else tz (i + 1) in
  tz 0

let create ?(field = Gf2m.gf32) ?(strata = 24) ?(capacity_per_stratum = 8) () =
  if strata <= 0 || capacity_per_stratum <= 0 then invalid_arg "Strata.create";
  {
    field;
    strata =
      Array.init strata (fun _ ->
          Sketch.create ~field ~capacity:capacity_per_stratum ());
  }

let add t id = Sketch.add t.strata.(stratum_of t id) id
let add_all t ids = List.iter (add t) ids

let of_list ?field ?strata ?capacity_per_stratum ids =
  let t = create ?field ?strata ?capacity_per_stratum () in
  add_all t ids;
  t

let estimate a b =
  if
    Array.length a.strata <> Array.length b.strata
    || Gf2m.bits a.field <> Gf2m.bits b.field
  then invalid_arg "Strata.estimate: mismatched estimators";
  let n = Array.length a.strata in
  (* Decode from the sparsest strata down; scale up at the first decode
     failure. *)
  let rec go i count =
    if i < 0 then count
    else
      match Sketch.decode (Sketch.merge a.strata.(i) b.strata.(i)) with
      | Ok diff -> go (i - 1) (count + List.length diff)
      | Error `Decode_failure -> (1 lsl (i + 1)) * count
  in
  go (n - 1) 0

let serialized_size t =
  1 + Array.fold_left (fun acc s -> acc + Sketch.serialized_size s) 0 t.strata

let encode w t =
  Writer.u8 w (Array.length t.strata);
  Array.iter (Sketch.encode w) t.strata

let decode_wire ?(field = Gf2m.gf32) r =
  let n = Reader.u8 r in
  if n = 0 then raise (Reader.Malformed "strata count");
  let strata = Array.init n (fun _ -> Sketch.decode_wire ~field r) in
  { field; strata }
