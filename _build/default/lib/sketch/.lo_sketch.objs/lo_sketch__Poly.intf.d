lib/sketch/poly.mli: Gf2m
