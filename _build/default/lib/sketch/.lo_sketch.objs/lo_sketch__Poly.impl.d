lib/sketch/poly.ml: Array Gf2m
