lib/sketch/gf2m.mli:
