lib/sketch/sketch.mli: Gf2m Lo_codec
