lib/sketch/strata.ml: Array Gf2m Int64 List Lo_codec Sketch
