lib/sketch/gf2m.ml: Array Fun List
