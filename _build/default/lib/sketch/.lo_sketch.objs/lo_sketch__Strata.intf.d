lib/sketch/strata.mli: Gf2m Lo_codec
