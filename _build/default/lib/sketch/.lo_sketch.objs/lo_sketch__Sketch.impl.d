lib/sketch/sketch.ml: Array Berlekamp_massey Gf2m List Lo_codec Poly
