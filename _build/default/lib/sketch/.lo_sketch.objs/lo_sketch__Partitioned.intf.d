lib/sketch/partitioned.mli: Gf2m
