lib/sketch/partitioned.ml: Gf2m List Queue Sketch
