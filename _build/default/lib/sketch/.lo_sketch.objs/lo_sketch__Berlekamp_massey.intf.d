lib/sketch/berlekamp_massey.mli: Gf2m Poly
