lib/sketch/berlekamp_massey.ml: Array Gf2m Poly
