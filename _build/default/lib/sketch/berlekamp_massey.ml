let shift_mul f c poly k =
  (* c * x^k * poly *)
  if c = 0 || Poly.is_zero poly then Poly.zero
  else begin
    let d = Poly.degree poly in
    let out = Array.make (d + k + 1) 0 in
    for i = 0 to d do
      out.(i + k) <- Gf2m.mul f c (Poly.coeff poly i)
    done;
    Poly.of_coeffs (Array.to_list out)
  end

let run f s =
  let n = Array.length s in
  let c = ref Poly.one and b = ref Poly.one in
  let l = ref 0 and m = ref 1 and bd = ref 1 in
  for i = 0 to n - 1 do
    (* discrepancy: s_i + sum_{j=1..L} c_j s_{i-j} (char 2: + is xor) *)
    let delta = ref s.(i) in
    for j = 1 to !l do
      delta := !delta lxor Gf2m.mul f (Poly.coeff !c j) s.(i - j)
    done;
    if !delta = 0 then incr m
    else if 2 * !l <= i then begin
      let t = !c in
      let coef = Gf2m.div f !delta !bd in
      c := Poly.add !c (shift_mul f coef !b !m);
      l := i + 1 - !l;
      b := t;
      bd := !delta;
      m := 1
    end
    else begin
      let coef = Gf2m.div f !delta !bd in
      c := Poly.add !c (shift_mul f coef !b !m);
      incr m
    end
  done;
  (!c, !l)
