(** Berlekamp–Massey over GF(2^m).

    Finds the shortest linear-feedback shift register generating a
    syndrome sequence; its connection polynomial is the PinSketch
    locator whose roots are the inverses of the set-difference
    elements. *)

val run : Gf2m.t -> int array -> Poly.t * int
(** [run f s] returns [(c, l)] where [c] is the connection polynomial
    (with [c(0) = 1]) of the minimal LFSR of length [l] generating the
    sequence [s] (read as s.(0), s.(1), ...). *)
