(** Deterministic pseudo-random generator (splitmix64).

    Every simulation component draws randomness through an explicit
    [Rng.t] so entire experiment runs are reproducible from a single
    seed. Not cryptographic — protocol-visible randomness (the canonical
    shuffle) uses {!Lo_crypto.Hmac_drbg} instead. *)

type t

val create : int -> t
val split : t -> t
(** Independent child generator; advancing either does not affect the
    other. *)

val int : t -> int -> int
(** Uniform in [\[0, bound)]; [bound] up to [max_int]. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] draws [min k (length xs)]
    distinct elements. *)

val exponential : t -> mean:float -> float
(** Exponential variate (Poisson inter-arrival times). *)

val gaussian : t -> mu:float -> sigma:float -> float
val lognormal : t -> mu:float -> sigma:float -> float
