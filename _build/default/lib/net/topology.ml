type t = { adjacency : int list array; edge_set : (int * int, unit) Hashtbl.t }

let n t = Array.length t.adjacency
let neighbors t i = t.adjacency.(i)
let degree t i = List.length t.adjacency.(i)

let edge_key a b = if a < b then (a, b) else (b, a)
let are_connected t a b = Hashtbl.mem t.edge_set (edge_key a b)

let add_edge adjacency edge_set a b =
  if a <> b && not (Hashtbl.mem edge_set (edge_key a b)) then begin
    Hashtbl.add edge_set (edge_key a b) ();
    adjacency.(a) <- b :: adjacency.(a);
    adjacency.(b) <- a :: adjacency.(b);
    true
  end
  else false

(* Fill outbound slots of [sources] with random targets drawn from the
   whole node set, respecting the inbound cap. [indeg] counts inbound
   acceptances only; ring edges count on both sides. *)
let fill_random rng adjacency edge_set indeg ~sources ~targets ~out_degree
    ~max_in ~outdeg =
  let num = Array.length targets in
  List.iter
    (fun v ->
      let attempts = ref 0 in
      while outdeg.(v) < out_degree && !attempts < 50 * out_degree do
        incr attempts;
        let w = targets.(Rng.int rng num) in
        if w <> v && indeg.(w) < max_in && not (Hashtbl.mem edge_set (edge_key v w))
        then begin
          ignore (add_edge adjacency edge_set v w);
          outdeg.(v) <- outdeg.(v) + 1;
          indeg.(w) <- indeg.(w) + 1
        end
      done)
    sources

let build_over rng ~total ~ring_nodes ~other_nodes ~out_degree ~max_in =
  let adjacency = Array.make total [] in
  let edge_set = Hashtbl.create (total * out_degree) in
  let outdeg = Array.make total 0 and indeg = Array.make total 0 in
  (* Ring over [ring_nodes] in a shuffled order. *)
  let ring = Array.of_list ring_nodes in
  Rng.shuffle rng ring;
  let rn = Array.length ring in
  if rn >= 2 then
    for i = 0 to rn - 1 do
      let a = ring.(i) and b = ring.((i + 1) mod rn) in
      if add_edge adjacency edge_set a b then begin
        outdeg.(a) <- outdeg.(a) + 1;
        indeg.(b) <- indeg.(b) + 1
      end
    done;
  let everyone = Array.init total Fun.id in
  fill_random rng adjacency edge_set indeg ~sources:ring_nodes
    ~targets:everyone ~out_degree ~max_in ~outdeg;
  fill_random rng adjacency edge_set indeg ~sources:other_nodes
    ~targets:everyone ~out_degree ~max_in ~outdeg;
  { adjacency; edge_set }

let build rng ~n ~out_degree ~max_in =
  if n <= 0 then invalid_arg "Topology.build";
  build_over rng ~total:n ~ring_nodes:(List.init n Fun.id) ~other_nodes:[]
    ~out_degree ~max_in

let build_with_correct_core rng ~malicious ~out_degree ~max_in =
  let total = Array.length malicious in
  let correct = ref [] and bad = ref [] in
  for i = total - 1 downto 0 do
    if malicious.(i) then bad := i :: !bad else correct := i :: !correct
  done;
  build_over rng ~total ~ring_nodes:!correct ~other_nodes:!bad ~out_degree
    ~max_in

let is_connected_subgraph t ~keep =
  let total = n t in
  let start = ref (-1) in
  let members = ref 0 in
  for i = 0 to total - 1 do
    if keep i then begin
      incr members;
      if !start < 0 then start := i
    end
  done;
  if !members <= 1 then true
  else begin
    let visited = Array.make total false in
    let queue = Queue.create () in
    Queue.add !start queue;
    visited.(!start) <- true;
    let seen = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if keep w && not visited.(w) then begin
            visited.(w) <- true;
            incr seen;
            Queue.add w queue
          end)
        t.adjacency.(v)
    done;
    !seen = !members
  end

let average_degree t =
  let total = n t in
  let sum = ref 0 in
  for i = 0 to total - 1 do
    sum := !sum + degree t i
  done;
  float_of_int !sum /. float_of_int total
