let uniform_sample rng ~n ~k ~exclude =
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if not (exclude i) then candidates := i :: !candidates
  done;
  Rng.sample_without_replacement rng k !candidates

type config = {
  view_size : int;
  num_samplers : int;
  period : float;
  push_cap : int;
}

let default_config =
  { view_size = 16; num_samplers = 16; period = 1.0; push_cap = 8 }

(* One min-wise sampler: remembers the id minimising a keyed hash over
   everything it has observed; with a uniformly random key the minimum
   is a uniform sample of the observed id stream's support. *)
type sampler = { key : int; mutable best : int; mutable best_hash : int }

type node_state = {
  mutable view : int list;
  samplers : sampler array;
  mutable pushes : int list; (* pushes received this round *)
  mutable pulls : int list; (* ids learned from pull replies this round *)
  mutable push_count : int;
  seen : (int, unit) Hashtbl.t;
}

type t = {
  net : Network.t;
  config : config;
  rng : Rng.t;
  states : node_state array;
}

let mix_hash key id =
  (* splitmix-style integer mixing; uniform enough for min-wise use. *)
  let z = Int64.add (Int64.of_int key) (Int64.mul (Int64.of_int id) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int z land max_int

let observe_id st id =
  Hashtbl.replace st.seen id ();
  Array.iter
    (fun s ->
      let h = mix_hash s.key id in
      if s.best < 0 || h < s.best_hash then begin
        s.best <- id;
        s.best_hash <- h
      end)
    st.samplers

let encode_ids ids =
  String.concat "," (List.map string_of_int ids)

let decode_ids s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.filter_map (fun x -> int_of_string_opt x)

let handle t node _net ~from ~tag payload =
  let st = t.states.(node) in
  match tag with
  | "sampler:push" ->
      if st.push_count < t.config.push_cap then begin
        st.push_count <- st.push_count + 1;
        st.pushes <- from :: st.pushes;
        observe_id st from
      end
  | "sampler:pull-req" ->
      let ids = node :: st.view in
      Network.send t.net ~src:node ~dst:from ~tag:"sampler:pull-resp"
        (encode_ids ids)
  | "sampler:pull-resp" ->
      let ids = decode_ids payload in
      List.iter
        (fun id ->
          if id >= 0 && id < Network.num_nodes t.net && id <> node then begin
            st.pulls <- id :: st.pulls;
            observe_id st id
          end)
        ids
  | _ -> ()

let dedup ids =
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun id ->
      if Hashtbl.mem tbl id then false
      else begin
        Hashtbl.add tbl id ();
        true
      end)
    ids

let rec round t node =
  let st = t.states.(node) in
  (* Close the previous round: rebuild the view from thirds of pushes,
     pulls and sampler outputs, as in Brahms. *)
  let third = max 1 (t.config.view_size / 3) in
  let pushes = Rng.sample_without_replacement t.rng third (dedup st.pushes) in
  let pulls = Rng.sample_without_replacement t.rng third (dedup st.pulls) in
  let sampled =
    Array.to_list st.samplers
    |> List.filter_map (fun s -> if s.best >= 0 then Some s.best else None)
    |> dedup
    |> Rng.sample_without_replacement t.rng third
  in
  let candidates = dedup (pushes @ pulls @ sampled @ st.view) in
  let view =
    List.filteri (fun i _ -> i < t.config.view_size) candidates
  in
  if view <> [] then st.view <- view;
  st.pushes <- [];
  st.pulls <- [];
  st.push_count <- 0;
  (* Open the new round: push self to a random view member, pull from
     another. *)
  (match st.view with
  | [] -> ()
  | view ->
      let target = Rng.pick_list t.rng view in
      Network.send t.net ~src:node ~dst:target ~tag:"sampler:push" "";
      let target2 = Rng.pick_list t.rng view in
      Network.send t.net ~src:node ~dst:target2 ~tag:"sampler:pull-req" "");
  Network.schedule t.net ~delay:t.config.period (fun _ -> round t node)

let create ?(config = default_config) mux net ~bootstrap =
  let n = Network.num_nodes net in
  let rng = Rng.split (Network.rng net) in
  let states =
    Array.init n (fun node ->
        let view = dedup (bootstrap node) in
        let st =
          {
            view;
            samplers =
              Array.init config.num_samplers (fun _ ->
                  { key = Rng.int rng max_int; best = -1; best_hash = 0 });
            pushes = [];
            pulls = [];
            push_count = 0;
            seen = Hashtbl.create 32;
          }
        in
        List.iter (observe_id st) view;
        st)
  in
  let t = { net; config; rng; states } in
  for node = 0 to n - 1 do
    Mux.register mux node ~proto:"sampler" (handle t node)
  done;
  t

let start t =
  for node = 0 to Network.num_nodes t.net - 1 do
    let offset = Rng.float t.rng t.config.period in
    Network.schedule t.net ~delay:offset (fun _ -> round t node)
  done

let current_view t node = t.states.(node).view

let samples t node =
  Array.to_list t.states.(node).samplers
  |> List.filter_map (fun s -> if s.best >= 0 then Some s.best else None)

let observed t node = Hashtbl.length t.states.(node).seen
