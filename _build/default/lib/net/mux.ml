type t = {
  net : Network.t;
  table : (int * string, Network.handler) Hashtbl.t;
  installed : (int, unit) Hashtbl.t;
}

let create net =
  { net; table = Hashtbl.create 64; installed = Hashtbl.create 64 }

let proto_of_tag tag =
  match String.index_opt tag ':' with
  | None -> tag
  | Some i -> String.sub tag 0 i

let dispatch t node net ~from ~tag payload =
  match Hashtbl.find_opt t.table (node, proto_of_tag tag) with
  | Some handler -> handler net ~from ~tag payload
  | None -> ()

let register t node ~proto handler =
  Hashtbl.replace t.table (node, proto) handler;
  if not (Hashtbl.mem t.installed node) then begin
    Hashtbl.add t.installed node ();
    Network.set_handler t.net node (fun net ~from ~tag payload ->
        dispatch t node net ~from ~tag payload)
  end
