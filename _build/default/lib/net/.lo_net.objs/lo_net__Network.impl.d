lib/net/network.ml: Array Event_queue Float Hashtbl Latency List Rng String
