lib/net/topology.mli: Rng
