lib/net/topology.ml: Array Fun Hashtbl List Queue Rng
