lib/net/rng.mli:
