lib/net/peer_sampler.ml: Array Hashtbl Int64 List Mux Network Rng String
