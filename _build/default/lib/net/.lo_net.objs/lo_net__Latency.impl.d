lib/net/latency.ml: Array Lo_crypto
