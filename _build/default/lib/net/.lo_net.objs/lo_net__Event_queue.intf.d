lib/net/event_queue.mli:
