lib/net/latency.mli:
