lib/net/mux.mli: Network
