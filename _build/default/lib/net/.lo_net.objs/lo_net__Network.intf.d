lib/net/network.mli: Latency Rng
