lib/net/event_queue.ml: Array
