lib/net/mux.ml: Hashtbl Network String
