lib/net/peer_sampler.mli: Mux Network Rng
