(** Binary-heap priority queue of timestamped events.

    Ties break on insertion order, which keeps simulations fully
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val add : 'a t -> time:float -> 'a -> unit
val peek_time : 'a t -> float option
val pop : 'a t -> (float * 'a) option
val clear : 'a t -> unit
