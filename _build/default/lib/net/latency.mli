(** Synthetic wide-area latency model.

    Stands in for the WonderNetwork ping dataset used by the paper: 32
    cities grouped into regions, with one-way latencies built from
    region-pair baselines plus a deterministic per-pair perturbation.
    Miners are assigned to cities round-robin, exactly as in the paper's
    setup (Sec. 6.1). *)

type t

val default : t
(** The 32-city model. *)

val uniform : one_way:float -> t
(** Flat model for controlled tests: every distinct pair has the given
    one-way latency; same-city pairs too. *)

val num_cities : t -> int
val city_name : t -> int -> string

val one_way : t -> int -> int -> float
(** One-way latency in seconds between two city indices. *)

val city_of_node : t -> int -> int
(** Round-robin city assignment of a node index. *)
