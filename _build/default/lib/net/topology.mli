(** Random overlay topologies in the style of Bitcoin's connection
    policy: each node dials a fixed number of outbound peers and accepts
    a bounded number of inbound connections; established connections are
    bidirectional.

    The paper's resilience experiments additionally require the correct
    nodes to form a connected subgraph on their own (Sec. 6.2); the
    [build_with_correct_core] constructor enforces that invariant. *)

type t

val build : Rng.t -> n:int -> out_degree:int -> max_in:int -> t
(** Connected random overlay over [n] nodes. A Hamiltonian ring seeds
    connectivity; remaining outbound slots are filled uniformly at
    random subject to the inbound cap. *)

val build_with_correct_core :
  Rng.t -> malicious:bool array -> out_degree:int -> max_in:int -> t
(** Same, but the ring is laid over the correct nodes only, so the
    correct subgraph is connected regardless of malicious behaviour.
    Malicious nodes attach with random outbound edges. *)

val n : t -> int
val neighbors : t -> int -> int list
val degree : t -> int -> int
val are_connected : t -> int -> int -> bool

val is_connected_subgraph : t -> keep:(int -> bool) -> bool
(** Whether the subgraph induced by [keep] is connected (true for the
    empty or singleton subgraph). *)

val average_degree : t -> float
