(** Discrete-event network simulation engine.

    Nodes are dense integer ids. Protocol implementations register a
    message handler per node and exchange opaque byte strings; the
    engine delivers them after the city-to-city one-way latency (plus
    optional jitter) and accounts every byte, broken down by a caller
    supplied tag — which is what the bandwidth-overhead figures are
    computed from. All scheduling is deterministic in the seed. *)

type t
type node = int

type handler = t -> from:node -> tag:string -> string -> unit

val create :
  ?latency:Latency.t ->
  ?jitter:float ->
  ?loss_rate:float ->
  num_nodes:int ->
  seed:int ->
  unit ->
  t
(** [jitter] is the fraction of the base latency used as the half-width
    of a uniform perturbation (default 0.1). [loss_rate] drops each
    message independently with the given probability (default 0;
    failure-injection knob — self-sends are never dropped). *)

val set_loss_rate : t -> float -> unit

val set_node_delay : t -> node -> float -> unit
(** Extra one-way delay added to every message sent by this node
    (failure injection: an overloaded or throttled peer). 0 clears. *)

val num_nodes : t -> int
val now : t -> float
val rng : t -> Rng.t
(** The engine's root generator; protocols should [Rng.split] it. *)

val city_of : t -> node -> int
val latency_model : t -> Latency.t
val set_handler : t -> node -> handler -> unit

val send : t -> src:node -> dst:node -> tag:string -> string -> unit
(** Queue a message for delivery. Self-sends are delivered with zero
    latency. Dropped silently if the destination is down or a delivery
    filter rejects it. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
val schedule_at : t -> at:float -> (t -> unit) -> unit

val set_down : t -> node -> bool -> unit
(** A down node loses all messages addressed to it (crash model);
    messages already in flight are also lost on arrival. *)

val is_down : t -> node -> bool

val set_delivery_filter : t -> (src:node -> dst:node -> tag:string -> bool) option -> unit
(** Adversarial/partition hook: return [false] to drop a message at
    send time. *)

val run_until : t -> float -> unit
(** Process events with timestamp [<=] the given time; afterwards
    [now t] equals that time. *)

val run_until_idle : ?max_time:float -> t -> unit

(** {1 Accounting} *)

val bytes_sent_by : t -> node -> int
val bytes_received_by : t -> node -> int
val messages_sent : t -> int
val total_bytes : t -> int
val bytes_by_tag : t -> (string * int) list
(** Tag -> cumulative payload bytes, sorted by tag. *)

val reset_accounting : t -> unit
