type t = { names : string array; matrix : float array array }

let num_cities t = Array.length t.names
let city_name t i = t.names.(i)
let one_way t a b = t.matrix.(a).(b)
let city_of_node t node = node mod num_cities t

(* Region-pair one-way baselines in milliseconds, roughly calibrated to
   public inter-city ping statistics. Region order: north america,
   europe, asia, south america, oceania, africa. *)
let region_base =
  (* Symmetric matrix indexed by region pairs, one-way ms. *)
  [| (* na    eu     as     sa     oc     af *)
     [| 18.; 45.; 80.; 60.; 75.; 90. |];
     [| 45.; 12.; 90.; 95.; 130.; 60. |];
     [| 80.; 90.; 25.; 140.; 60.; 110. |];
     [| 60.; 95.; 140.; 15.; 120.; 110. |];
     [| 75.; 130.; 60.; 120.; 10.; 135. |];
     [| 90.; 60.; 110.; 110.; 135.; 20. |] |]

let cities =
  (* name, region index *)
  [| ("newyork", 0); ("losangeles", 0); ("chicago", 0); ("toronto", 0);
     ("seattle", 0); ("dallas", 0); ("miami", 0); ("denver", 0);
     ("london", 1); ("amsterdam", 1); ("frankfurt", 1); ("paris", 1);
     ("madrid", 1); ("stockholm", 1); ("warsaw", 1); ("zurich", 1);
     ("tokyo", 2); ("singapore", 2); ("hongkong", 2); ("seoul", 2);
     ("mumbai", 2); ("bangkok", 2); ("taipei", 2); ("jakarta", 2);
     ("saopaulo", 3); ("buenosaires", 3); ("santiago", 3);
     ("sydney", 4); ("auckland", 4);
     ("johannesburg", 5); ("cairo", 5); ("lagos", 5) |]

(* Deterministic perturbation in [0.8, 1.2] from the pair of names, so
   the matrix is stable across runs without shipping a dataset. *)
let perturbation a b =
  let key = if a <= b then a ^ "|" ^ b else b ^ "|" ^ a in
  let h = Lo_crypto.Sha256.hash_to_int key in
  0.8 +. (0.4 *. float_of_int (h land 0xFFFF) /. 65535.)

let default =
  let n = Array.length cities in
  let names = Array.map fst cities in
  let matrix =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.002 (* same data centre: 2 ms *)
            else begin
              let name_i, region_i = cities.(i) in
              let name_j, region_j = cities.(j) in
              let base = region_base.(region_i).(region_j) in
              base *. perturbation name_i name_j /. 1000.
            end))
  in
  { names; matrix }

let uniform ~one_way =
  { names = [| "uniform" |]; matrix = [| [| one_way |] |] }
