type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

(* 62 uniform bits as a non-negative OCaml int. *)
let bits t = Int64.to_int (next t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let cutoff = max_int - (max_int mod bound) in
    let rec go () =
      let v = bits t in
      if v < cutoff then v mod bound else go ()
    in
    go ()
  end

let float t bound = bound *. (float_of_int (bits t) /. float_of_int max_int)
let bool t = bits t land 1 = 1

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty";
  a.(int t (Array.length a))

let pick_list t l =
  match l with [] -> invalid_arg "Rng.pick_list: empty" | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  (* Box–Muller. *)
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)
