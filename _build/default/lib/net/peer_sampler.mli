(** Byzantine-resilient uniform peer sampling (Brahms-style, simplified).

    LØ's detection guarantees rest on an overlay in which any two
    correct nodes eventually interact (paper Sec. 3 and 5.1). The paper
    assumes a sampler in the style of Brahms/Basalt; this module
    implements the essential construction: gossip rounds mixing bounded
    pushes with pulls, plus min-wise independent samplers that converge
    to uniform choices and are hard for an adversary to bias by
    flooding.

    The LØ experiments themselves use {!uniform_sample} (the idealised
    abstraction the paper presumes); this gossip implementation is
    validated separately for uniformity and flood resistance. *)

val uniform_sample :
  Rng.t -> n:int -> k:int -> exclude:(int -> bool) -> int list
(** [k] distinct node ids drawn uniformly among those not excluded
    (fewer if not enough candidates). *)

type t

type config = {
  view_size : int;  (** gossip view size (Brahms' l1) *)
  num_samplers : int;  (** min-wise samplers per node (Brahms' l2) *)
  period : float;  (** gossip round period, seconds *)
  push_cap : int;  (** max pushes accepted per round (flood defence) *)
}

val default_config : config

val create :
  ?config:config -> Mux.t -> Network.t -> bootstrap:(int -> int list) -> t
(** Registers the sampler on every node of the network; [bootstrap]
    provides each node's initial view (e.g. its topology neighbours). *)

val start : t -> unit
(** Schedule the first (staggered) gossip round on every node. *)

val current_view : t -> int -> int list
val samples : t -> int -> int list
(** Converged sampler outputs for a node (may contain duplicates before
    convergence; empty entries are skipped). *)

val observed : t -> int -> int
(** How many distinct peer ids this node has ever observed. *)
