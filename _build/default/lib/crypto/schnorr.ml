type secret_key = Uint256.t
type public_key = Secp256k1.point

let n = Secp256k1.n

(* Hash arbitrary bytes onto the scalar field, rejecting 0. *)
let hash_to_scalar parts =
  let rec go parts =
    let h = Uint256.of_bytes_be (Sha256.digest_list parts) in
    let s = Uint256.mod_reduce ~modulus:n h in
    if Uint256.is_zero s then go (parts @ [ "retry" ]) else s
  in
  go parts

let keypair_of_seed seed =
  let sk = hash_to_scalar [ "lo-keygen"; seed ] in
  (sk, Secp256k1.mul sk Secp256k1.g)

let public_key sk = Secp256k1.mul sk Secp256k1.g
let public_key_bytes = Secp256k1.encode_compressed

let public_key_of_bytes s =
  match Secp256k1.decode_compressed s with
  | Some pt when not (Secp256k1.is_infinity pt) -> Some pt
  | Some _ | None -> None

let secret_key_bytes = Uint256.to_bytes_be

let affine_x pt =
  match Secp256k1.to_affine pt with
  | Some (x, _) -> x
  | None -> invalid_arg "Schnorr: unexpected point at infinity"

let challenge ~rx ~pk msg =
  hash_to_scalar
    [ "lo-schnorr"; Uint256.to_bytes_be rx; public_key_bytes pk; msg ]

let sign sk msg =
  let pk = public_key sk in
  let k = hash_to_scalar [ "lo-nonce"; Uint256.to_bytes_be sk; msg ] in
  let r = Secp256k1.mul k Secp256k1.g in
  let rx = affine_x r in
  let e = challenge ~rx ~pk msg in
  let s =
    Uint256.mod_add ~modulus:n k (Uint256.mod_mul ~modulus:n e sk)
  in
  Uint256.to_bytes_be rx ^ Uint256.to_bytes_be s

let verify pk ~msg ~signature =
  String.length signature = 64
  &&
  let rx = Uint256.of_bytes_be (String.sub signature 0 32) in
  let s = Uint256.of_bytes_be (String.sub signature 32 32) in
  Uint256.compare s n < 0
  && (not (Secp256k1.is_infinity pk))
  &&
  let e = challenge ~rx ~pk msg in
  (* R' = s*G - e*P should equal the R whose x-coordinate was signed. *)
  let r' =
    Secp256k1.add (Secp256k1.mul s Secp256k1.g)
      (Secp256k1.neg (Secp256k1.mul e pk))
  in
  (not (Secp256k1.is_infinity r')) && Uint256.equal (affine_x r') rx
