(* Little-endian arbitrary-length naturals over 16-bit limbs stored in
   native ints. 16-bit limbs keep every intermediate product and carry
   comfortably inside OCaml's 63-bit integers. Internal module: Uint256
   and Secp256k1 build their fixed-width arithmetic on top of it. *)

let limb_bits = 16
let limb_mask = 0xFFFF

let is_zero a =
  let rec go i = i < 0 || (a.(i) = 0 && go (i - 1)) in
  go (Array.length a - 1)

(* Value comparison, lengths may differ. *)
let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i < 0 then 0
    else
      let xa = if i < la then a.(i) else 0 in
      let xb = if i < lb then b.(i) else 0 in
      if xa <> xb then Stdlib.compare xa xb else go (i - 1)
  in
  go (max la lb - 1)

(* a + b, result has [max la lb + 1] limbs. *)
let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  out

(* a - b; requires a >= b. Result has [length a] limbs. *)
let sub a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Limbs.sub: negative result";
  out

(* Schoolbook product, [la + lb] limbs. *)
let mul a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    if a.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = out.(!k) + !carry in
        out.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    end
  done;
  out

let num_bits a =
  let rec top i = if i < 0 then -1 else if a.(i) <> 0 then i else top (i - 1) in
  match top (Array.length a - 1) with
  | -1 -> 0
  | i ->
      let v = a.(i) in
      let rec width w = if v lsr w = 0 then w else width (w + 1) in
      (i * limb_bits) + width 1

let bit a i =
  let limb = i / limb_bits in
  if limb >= Array.length a then false
  else a.(limb) lsr (i mod limb_bits) land 1 = 1

(* Binary long division: (quotient, remainder) with a = q*b + r, r < b. *)
let divmod a b =
  if is_zero b then invalid_arg "Limbs.divmod: division by zero";
  let nb = Array.length b in
  let q = Array.make (Array.length a) 0 in
  let r = Array.make (nb + 1) 0 in
  let r_ge_b () =
    if r.(nb) <> 0 then true
    else
      let rec go i =
        if i < 0 then true
        else if r.(i) <> b.(i) then r.(i) > b.(i)
        else go (i - 1)
      in
      go (nb - 1)
  in
  let sub_b () =
    let borrow = ref 0 in
    for i = 0 to nb - 1 do
      let d = r.(i) - b.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + limb_mask + 1;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    r.(nb) <- r.(nb) - !borrow
  in
  for i = num_bits a - 1 downto 0 do
    (* r := r << 1 | bit i of a *)
    for j = nb downto 1 do
      r.(j) <- ((r.(j) lsl 1) lor (r.(j - 1) lsr (limb_bits - 1))) land limb_mask
    done;
    r.(0) <- ((r.(0) lsl 1) land limb_mask) lor (if bit a i then 1 else 0);
    if r_ge_b () then begin
      sub_b ();
      q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    end
  done;
  (q, Array.sub r 0 nb)

let rem a b = snd (divmod a b)

(* Fit into exactly [n] limbs (value must fit). *)
let resize a n =
  let la = Array.length a in
  for i = n to la - 1 do
    if a.(i) <> 0 then invalid_arg "Limbs.resize: overflow"
  done;
  let out = Array.make n 0 in
  Array.blit a 0 out 0 (min n la);
  out
