type t = { id : string; sign : string -> string }

type scheme = {
  name : string;
  make : seed:string -> t;
  verify : id:string -> msg:string -> signature:string -> bool;
}

let id t = t.id
let sign t msg = t.sign msg
let make scheme ~seed = scheme.make ~seed
let verify scheme ~id ~msg ~signature = scheme.verify ~id ~msg ~signature
let scheme_name scheme = scheme.name
let id_size = 33
let signature_size = 64

let schnorr =
  {
    name = "schnorr";
    make =
      (fun ~seed ->
        let sk, pk = Schnorr.keypair_of_seed seed in
        { id = Schnorr.public_key_bytes pk; sign = Schnorr.sign sk });
    verify =
      (fun ~id ~msg ~signature ->
        match Schnorr.public_key_of_bytes id with
        | None -> false
        | Some pk -> Schnorr.verify pk ~msg ~signature);
  }

let simulation () =
  (* id -> MAC key registry, local to this scheme instance. *)
  let registry : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let make ~seed =
    let key = Sha256.digest_list [ "sim-signer-key"; seed ] in
    let id = "\x01" ^ Sha256.digest_list [ "sim-signer-id"; seed ] in
    Hashtbl.replace registry id key;
    let sign msg =
      let tag = Hmac.sha256 ~key msg in
      tag ^ String.make 32 '\000'
    in
    { id; sign }
  in
  let verify ~id ~msg ~signature =
    String.length signature = 64
    &&
    match Hashtbl.find_opt registry id with
    | None -> false
    | Some key ->
        let tag = Hmac.sha256 ~key msg in
        String.equal signature (tag ^ String.make 32 '\000')
  in
  { name = "simulation"; make; verify }
