let p =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let n =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

let gx =
  Uint256.of_hex
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

let gy =
  Uint256.of_hex
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"

(* --- Field arithmetic with fast reduction: p = 2^256 - c, c = 2^32+977.
   For any t, t = hi*2^256 + lo = hi*c + lo (mod p); folding at most
   three times brings t below 2^256 + small, then conditional subtracts
   finish the job. --- *)

let c_limbs = [| 0x03D1; 0x0000; 0x0001 |] (* 2^32 + 977 in 16-bit limbs *)
let p_limbs = Uint256.to_limbs p

let reduce_p limbs_in =
  let t = ref limbs_in in
  let split () =
    let l = Array.length !t in
    if l <= 16 then None
    else
      let hi = Array.sub !t 16 (l - 16) in
      if Limbs.is_zero hi then None else Some (Array.sub !t 0 16, hi)
  in
  let continue = ref true in
  while !continue do
    match split () with
    | None -> continue := false
    | Some (lo, hi) -> t := Limbs.add (Limbs.mul hi c_limbs) lo
  done;
  let t = ref (Limbs.resize !t 16) in
  while Limbs.compare !t p_limbs >= 0 do
    t := Limbs.resize (Limbs.sub !t p_limbs) 16
  done;
  Uint256.of_limbs !t

let field_mul a b = reduce_p (Limbs.mul (Uint256.to_limbs a) (Uint256.to_limbs b))
let field_sq a = field_mul a a
let field_add a b = Uint256.mod_add ~modulus:p a b
let field_sub a b = Uint256.mod_sub ~modulus:p a b

let field_pow b e =
  let result = ref Uint256.one and acc = ref b in
  for i = 0 to Uint256.num_bits e - 1 do
    if Uint256.bit e i then result := field_mul !result !acc;
    acc := field_sq !acc
  done;
  !result

let field_inv a =
  if Uint256.is_zero a then invalid_arg "Secp256k1.field_inv: zero";
  field_pow a (Uint256.mod_sub ~modulus:p Uint256.zero (Uint256.of_int 2))

(* p = 3 (mod 4): the candidate square root of [a] is a^((p+1)/4). The
   exponent is derived from [p] rather than hardcoded. *)
let sqrt_exp =
  let p_plus_1 = Limbs.add p_limbs [| 1 |] in
  let q, r = Limbs.divmod p_plus_1 [| 4 |] in
  assert (Limbs.is_zero r);
  Uint256.of_limbs q

let field_sqrt a =
  let r = field_pow a sqrt_exp in
  if Uint256.equal (field_sq r) a then Some r else None

let seven = Uint256.of_int 7

let is_on_curve ~x ~y =
  Uint256.compare x p < 0
  && Uint256.compare y p < 0
  && Uint256.equal (field_sq y) (field_add (field_mul (field_sq x) x) seven)

(* --- Jacobian points: (X, Y, Z) represents (X/Z^2, Y/Z^3); Z = 0 is the
   point at infinity. --- *)

type point = { x : Uint256.t; y : Uint256.t; z : Uint256.t }

let infinity = { x = Uint256.one; y = Uint256.one; z = Uint256.zero }
let is_infinity pt = Uint256.is_zero pt.z

let of_affine ~x ~y =
  if not (is_on_curve ~x ~y) then
    invalid_arg "Secp256k1.of_affine: point not on curve";
  { x; y; z = Uint256.one }

let to_affine pt =
  if is_infinity pt then None
  else
    let zi = field_inv pt.z in
    let zi2 = field_sq zi in
    Some (field_mul pt.x zi2, field_mul pt.y (field_mul zi2 zi))

let neg pt = if is_infinity pt then pt else { pt with y = field_sub Uint256.zero pt.y }

let double pt =
  if is_infinity pt || Uint256.is_zero pt.y then infinity
  else begin
    let y2 = field_sq pt.y in
    let s = field_mul (Uint256.of_int 4) (field_mul pt.x y2) in
    let m = field_mul (Uint256.of_int 3) (field_sq pt.x) in
    let x3 = field_sub (field_sq m) (field_add s s) in
    let y3 =
      field_sub (field_mul m (field_sub s x3))
        (field_mul (Uint256.of_int 8) (field_sq y2))
    in
    let z3 = field_mul (field_add pt.y pt.y) pt.z in
    { x = x3; y = y3; z = z3 }
  end

let add pt1 pt2 =
  if is_infinity pt1 then pt2
  else if is_infinity pt2 then pt1
  else begin
    let z1z1 = field_sq pt1.z and z2z2 = field_sq pt2.z in
    let u1 = field_mul pt1.x z2z2 and u2 = field_mul pt2.x z1z1 in
    let s1 = field_mul pt1.y (field_mul z2z2 pt2.z) in
    let s2 = field_mul pt2.y (field_mul z1z1 pt1.z) in
    if Uint256.equal u1 u2 then
      if Uint256.equal s1 s2 then double pt1 else infinity
    else begin
      let h = field_sub u2 u1 in
      let r = field_sub s2 s1 in
      let h2 = field_sq h in
      let h3 = field_mul h2 h in
      let u1h2 = field_mul u1 h2 in
      let x3 = field_sub (field_sub (field_sq r) h3) (field_add u1h2 u1h2) in
      let y3 = field_sub (field_mul r (field_sub u1h2 x3)) (field_mul s1 h3) in
      let z3 = field_mul h (field_mul pt1.z pt2.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

let mul scalar pt =
  let acc = ref infinity in
  for i = Uint256.num_bits scalar - 1 downto 0 do
    acc := double !acc;
    if Uint256.bit scalar i then acc := add !acc pt
  done;
  !acc

let g = of_affine ~x:gx ~y:gy

let equal pt1 pt2 =
  match (to_affine pt1, to_affine pt2) with
  | None, None -> true
  | Some (x1, y1), Some (x2, y2) -> Uint256.equal x1 x2 && Uint256.equal y1 y2
  | _ -> false

let encode_compressed pt =
  match to_affine pt with
  | None -> String.make 33 '\000'
  | Some (x, y) ->
      let parity = if Uint256.bit y 0 then '\x03' else '\x02' in
      String.make 1 parity ^ Uint256.to_bytes_be x

let decode_compressed s =
  if String.length s <> 33 then None
  else if s = String.make 33 '\000' then Some infinity
  else
    match s.[0] with
    | '\x02' | '\x03' -> begin
        let x = Uint256.of_bytes_be (String.sub s 1 32) in
        if Uint256.compare x p >= 0 then None
        else
          let rhs = field_add (field_mul (field_sq x) x) seven in
          match field_sqrt rhs with
          | None -> None
          | Some y ->
              let want_odd = s.[0] = '\x03' in
              let y = if Uint256.bit y 0 = want_odd then y else field_sub Uint256.zero y in
              Some { x; y; z = Uint256.one }
      end
    | _ -> None
