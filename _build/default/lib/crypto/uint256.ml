type t = int array (* exactly 16 little-endian 16-bit limbs *)

let limbs = 16
let zero = Array.make limbs 0

let one =
  let a = Array.make limbs 0 in
  a.(0) <- 1;
  a

let of_int v =
  if v < 0 then invalid_arg "Uint256.of_int: negative";
  let a = Array.make limbs 0 in
  let rec fill i v =
    if v <> 0 && i < limbs then begin
      a.(i) <- v land 0xFFFF;
      fill (i + 1) (v lsr 16)
    end
  in
  fill 0 v;
  a

let of_bytes_be s =
  if String.length s <> 32 then invalid_arg "Uint256.of_bytes_be: need 32 bytes";
  let a = Array.make limbs 0 in
  for i = 0 to limbs - 1 do
    (* limb i covers bytes [30-2i] (hi) and [31-2i] (lo) *)
    let hi = Char.code s.[30 - (2 * i)] and lo = Char.code s.[31 - (2 * i)] in
    a.(i) <- (hi lsl 8) lor lo
  done;
  a

let to_bytes_be a =
  let out = Bytes.create 32 in
  for i = 0 to limbs - 1 do
    Bytes.set out (30 - (2 * i)) (Char.chr (a.(i) lsr 8));
    Bytes.set out (31 - (2 * i)) (Char.chr (a.(i) land 0xFF))
  done;
  Bytes.unsafe_to_string out

let of_hex h =
  let n = String.length h in
  if n > 64 then invalid_arg "Uint256.of_hex: too long";
  let padded = String.make (64 - n) '0' ^ h in
  of_bytes_be (Hex.decode padded)

let to_hex a = Hex.encode (to_bytes_be a)
let compare = Limbs.compare
let equal a b = compare a b = 0
let is_zero = Limbs.is_zero
let bit = Limbs.bit
let num_bits = Limbs.num_bits
let add a b = Array.sub (Limbs.add a b) 0 limbs
let mod_reduce ~modulus a = Limbs.resize (Limbs.rem a modulus) limbs

let mod_add ~modulus a b =
  let s = Limbs.add a b in
  if Limbs.compare s modulus >= 0 then Limbs.resize (Limbs.sub s modulus) limbs
  else Array.sub s 0 limbs

let mod_sub ~modulus a b =
  if Limbs.compare a b >= 0 then Limbs.sub a b
  else Limbs.resize (Limbs.sub (Limbs.add a modulus) b) limbs

let mod_mul ~modulus a b =
  Limbs.resize (Limbs.rem (Limbs.mul a b) modulus) limbs

let mod_pow ~modulus b e =
  let result = ref (mod_reduce ~modulus one) in
  let acc = ref (mod_reduce ~modulus b) in
  for i = 0 to num_bits e - 1 do
    if bit e i then result := mod_mul ~modulus !result !acc;
    acc := mod_mul ~modulus !acc !acc
  done;
  !result

let mod_inv_prime ~modulus a =
  if is_zero a then invalid_arg "Uint256.mod_inv_prime: zero";
  let p_minus_2 = Limbs.resize (Limbs.sub modulus (of_int 2)) limbs in
  mod_pow ~modulus a p_minus_2

let pp fmt a = Format.pp_print_string fmt (to_hex a)
let to_limbs a = Array.copy a
let of_limbs a = Limbs.resize a limbs
