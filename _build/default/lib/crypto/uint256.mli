(** Unsigned 256-bit integers with modular arithmetic.

    Backed by 16-bit limbs (see [Limbs]); all values are in
    [\[0, 2^256)]. Modular operations take the modulus explicitly, so the
    same module serves both the secp256k1 base field and its scalar
    field. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** Embed a non-negative OCaml int. *)

val of_bytes_be : string -> t
(** From a 32-byte big-endian string. @raise Invalid_argument on other
    lengths. *)

val to_bytes_be : t -> string
(** 32-byte big-endian encoding. *)

val of_hex : string -> t
(** From up to 64 hex digits (shorter strings are left-padded with 0). *)

val to_hex : t -> string
(** 64 lowercase hex digits. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val bit : t -> int -> bool
val num_bits : t -> int

val add : t -> t -> t
(** Addition modulo 2^256 (wraps silently). *)

val mod_reduce : modulus:t -> t -> t
val mod_add : modulus:t -> t -> t -> t
val mod_sub : modulus:t -> t -> t -> t
val mod_mul : modulus:t -> t -> t -> t
val mod_pow : modulus:t -> t -> t -> t
(** [mod_pow ~modulus b e] is [b^e mod modulus] by square-and-multiply. *)

val mod_inv_prime : modulus:t -> t -> t
(** Inverse modulo a prime via Fermat's little theorem.
    @raise Invalid_argument on zero input. *)

val pp : Format.formatter -> t -> unit

(**/**)

val to_limbs : t -> int array
(** Internal: expose the 16 little-endian 16-bit limbs (copied). *)

val of_limbs : int array -> t
(** Internal: from little-endian 16-bit limbs (value must fit 256 bits). *)
