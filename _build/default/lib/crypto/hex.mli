(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]. *)

val decode : string -> string
(** [decode h] parses a hexadecimal string (upper or lower case).
    @raise Invalid_argument if [h] has odd length or a non-hex character. *)

val decode_opt : string -> string option
(** [decode_opt h] is [Some (decode h)], or [None] if [h] is malformed. *)
