(** Deterministic random byte generator in the style of NIST SP 800-90A
    HMAC_DRBG (SHA-256 instance, no reseeding).

    Used wherever the protocol needs verifiable pseudo-randomness — most
    importantly the canonical intra-bundle shuffle seeded by the previous
    block hash (paper Sec. 4.3) — and in tests that need reproducible
    entropy. *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed material. Equal seeds yield equal
    output streams. *)

val generate : t -> int -> string
(** [generate t n] produces the next [n] bytes of the stream. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] draws an unbiased integer in [\[0, bound)] by
    rejection sampling. [bound] must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by the stream. Deterministic in
    the seed, so any party with the seed can reproduce the permutation. *)
