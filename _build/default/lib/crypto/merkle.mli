(** Binary SHA-256 Merkle trees with inclusion proofs.

    Used for compact commitments over transaction bundles: a miner can
    later reveal any committed transaction together with a logarithmic
    proof of membership. Leaves and internal nodes are domain-separated
    to prevent second-preimage tricks. *)

type direction = Left | Right
(** Side on which the sibling hash sits at each level (bottom-up). *)

type proof = { leaf_index : int; path : (direction * string) list }

val leaf_hash : string -> string
val root : string list -> string
(** Root over the list of leaf payloads. The empty list hashes a fixed
    sentinel. An odd node at any level is paired with itself. *)

val proof : string list -> int -> proof
(** Inclusion proof for the [i]-th leaf. @raise Invalid_argument if the
    index is out of range. *)

val verify : root:string -> leaf:string -> proof -> bool
