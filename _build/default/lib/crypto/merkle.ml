type direction = Left | Right
type proof = { leaf_index : int; path : (direction * string) list }

let leaf_hash data = Sha256.digest_list [ "\x00"; data ]
let node_hash l r = Sha256.digest_list [ "\x01"; l; r ]
let empty_root = Sha256.digest "lo-merkle-empty"

let level_up hashes =
  let n = Array.length hashes in
  let m = (n + 1) / 2 in
  Array.init m (fun i ->
      let l = hashes.(2 * i) in
      let r = if (2 * i) + 1 < n then hashes.((2 * i) + 1) else l in
      node_hash l r)

let root leaves =
  match leaves with
  | [] -> empty_root
  | _ ->
      let hashes = ref (Array.of_list (List.map leaf_hash leaves)) in
      while Array.length !hashes > 1 do
        hashes := level_up !hashes
      done;
      !hashes.(0)

let proof leaves index =
  let n = List.length leaves in
  if index < 0 || index >= n then invalid_arg "Merkle.proof: index out of range";
  let hashes = ref (Array.of_list (List.map leaf_hash leaves)) in
  let i = ref index in
  let path = ref [] in
  while Array.length !hashes > 1 do
    let level = !hashes in
    let len = Array.length level in
    let sibling_index = if !i mod 2 = 0 then !i + 1 else !i - 1 in
    let sibling =
      if sibling_index < len then level.(sibling_index) else level.(!i)
    in
    let dir = if !i mod 2 = 0 then Right else Left in
    path := (dir, sibling) :: !path;
    hashes := level_up level;
    i := !i / 2
  done;
  { leaf_index = index; path = List.rev !path }

let verify ~root:expected ~leaf proof =
  let h = ref (leaf_hash leaf) in
  List.iter
    (fun (dir, sibling) ->
      h :=
        match dir with
        | Left -> node_hash sibling !h
        | Right -> node_hash !h sibling)
    proof.path;
  String.equal !h expected
