let block_size = 64

let derive_pads key =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  let ipad = Bytes.make block_size '\x36' in
  let opad = Bytes.make block_size '\x5c' in
  for i = 0 to String.length key - 1 do
    let c = Char.code key.[i] in
    Bytes.set ipad i (Char.chr (c lxor 0x36));
    Bytes.set opad i (Char.chr (c lxor 0x5c))
  done;
  (Bytes.unsafe_to_string ipad, Bytes.unsafe_to_string opad)

let sha256_list ~key parts =
  let ipad, opad = derive_pads key in
  let inner = Sha256.digest_list (ipad :: parts) in
  Sha256.digest_list [ opad; inner ]

let sha256 ~key msg = sha256_list ~key [ msg ]
