type t = { mutable key : string; mutable value : string }

let update t provided =
  t.key <- Hmac.sha256_list ~key:t.key [ t.value; "\x00"; provided ];
  t.value <- Hmac.sha256 ~key:t.key t.value;
  if provided <> "" then begin
    t.key <- Hmac.sha256_list ~key:t.key [ t.value; "\x01"; provided ];
    t.value <- Hmac.sha256 ~key:t.key t.value
  end

let create ~seed =
  let t = { key = String.make 32 '\x00'; value = String.make 32 '\x01' } in
  update t seed;
  t

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.value <- Hmac.sha256 ~key:t.key t.value;
    Buffer.add_string buf t.value
  done;
  update t "";
  Buffer.sub buf 0 n

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Hmac_drbg.uniform_int";
  if bound = 1 then 0
  else begin
    (* Draw 56-bit values; reject above the largest multiple of [bound]
       to avoid modulo bias. *)
    let limit = 1 lsl 56 in
    let cutoff = limit - (limit mod bound) in
    let rec draw () =
      let b = generate t 7 in
      let v = ref 0 in
      for i = 0 to 6 do
        v := (!v lsl 8) lor Char.code b.[i]
      done;
      if !v < cutoff then !v mod bound else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = uniform_int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
