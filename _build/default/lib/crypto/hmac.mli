(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val sha256_list : key:string -> string list -> string
(** Tag of the concatenation of the given message parts. *)
