lib/crypto/secp256k1.mli: Uint256
