lib/crypto/hmac.mli:
