lib/crypto/limbs.ml: Array Stdlib
