lib/crypto/signer.mli:
