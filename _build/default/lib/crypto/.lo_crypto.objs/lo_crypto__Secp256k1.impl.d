lib/crypto/secp256k1.ml: Array Limbs String Uint256
