lib/crypto/schnorr.mli:
