lib/crypto/hex.mli:
