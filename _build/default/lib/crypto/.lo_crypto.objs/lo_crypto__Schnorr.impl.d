lib/crypto/schnorr.ml: Secp256k1 Sha256 String Uint256
