lib/crypto/uint256.ml: Array Bytes Char Format Hex Limbs String
