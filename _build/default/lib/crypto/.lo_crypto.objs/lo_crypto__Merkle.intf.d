lib/crypto/merkle.mli:
