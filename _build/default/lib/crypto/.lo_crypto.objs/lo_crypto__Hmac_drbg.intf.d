lib/crypto/hmac_drbg.mli:
