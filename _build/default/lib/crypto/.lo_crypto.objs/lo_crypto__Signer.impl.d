lib/crypto/signer.ml: Hashtbl Hmac Schnorr Sha256 String
