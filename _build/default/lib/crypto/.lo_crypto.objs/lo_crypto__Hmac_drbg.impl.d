lib/crypto/hmac_drbg.ml: Array Buffer Char Hmac String
