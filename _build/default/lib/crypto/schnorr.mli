(** Schnorr signatures over secp256k1 (BIP340-flavoured, simplified).

    Deterministic nonces are derived from the secret key and message, so
    signing needs no entropy source. Signatures are 64 bytes
    (R.x || s); public keys are 33-byte compressed points. *)

type secret_key
type public_key

val keypair_of_seed : string -> secret_key * public_key
(** Derive a keypair deterministically from arbitrary seed bytes (the
    seed is hashed onto the scalar field; a zero result is rejected by
    re-hashing). *)

val public_key : secret_key -> public_key
val public_key_bytes : public_key -> string
(** 33-byte compressed encoding; doubles as the node identity. *)

val public_key_of_bytes : string -> public_key option
val secret_key_bytes : secret_key -> string

val sign : secret_key -> string -> string
(** [sign sk msg] is a 64-byte signature over [msg]. *)

val verify : public_key -> msg:string -> signature:string -> bool
