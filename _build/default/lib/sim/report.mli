(** Plain-text rendering of experiment results (tables and ASCII
    series), in the spirit of the paper's figures. *)

val table : title:string -> header:string list -> string list list -> unit
(** Print an aligned table to stdout. *)

val bar_chart : title:string -> (string * float) list -> unit
(** Horizontal ASCII bars scaled to the maximum value. *)

val series : title:string -> x_label:string -> y_label:string ->
  (float * float) list -> unit
(** Print an (x, y) series as a two-column table plus a bar per row. *)

val histogram :
  title:string -> edges:(float * float) array -> density:float array -> unit

val seconds : float -> string
val bytes : int -> string
(** Human-readable byte count ("12.3 KB"). *)
