(** Statistics collectors for experiments. *)

module Stats : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.5] is the median (nearest-rank on the collected
      samples). 0 when empty. *)

  val values : t -> float list
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  (** Out-of-range samples clamp into the edge bins. *)

  val total : t -> int
  val bin_edges : t -> (float * float) array
  val counts : t -> int array
  val density : t -> float array
  (** Normalised so the bins sum to 1 (zeros when empty). *)
end

(** Latency bookkeeping: start times by key, durations out. *)
module Timing : sig
  type t

  val create : unit -> t
  val started : t -> key:string -> at:float -> unit
  val finish : t -> key:string -> at:float -> float option
  (** Duration since [started], recorded once per (key) pair; repeat
      finishes return [None]. *)

  val start_time : t -> key:string -> float option
  val pending : t -> int
end
