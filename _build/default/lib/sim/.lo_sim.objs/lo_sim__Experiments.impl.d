lib/sim/experiments.ml: Array Block Commitment Float Fun Hashtbl List Lo_baselines Lo_core Lo_crypto Lo_net Lo_sketch Lo_workload Metrics Node Option Policy Printf Report Scenario String Tx Unix
