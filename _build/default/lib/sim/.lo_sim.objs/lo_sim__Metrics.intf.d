lib/sim/metrics.mli:
