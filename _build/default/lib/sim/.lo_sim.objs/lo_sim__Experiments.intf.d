lib/sim/experiments.mli: Lo_workload
