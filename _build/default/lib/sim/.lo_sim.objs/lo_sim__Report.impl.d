lib/sim/report.ml: Array Float List Printf String
