lib/sim/scenario.mli: Lo_core Lo_crypto Lo_net Lo_workload
