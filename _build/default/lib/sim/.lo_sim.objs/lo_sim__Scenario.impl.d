lib/sim/scenario.ml: Accountability Array Directory Fun List Lo_core Lo_crypto Lo_net Lo_workload Node Printf Tx
