lib/sim/report.mli:
