module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer
module Sha256 = Lo_crypto.Sha256

type config = {
  scheme : Signer.scheme;
  announce_period : float;
  fanout : int;
  num_witnesses : int;
  audit_period : float;
}

let default_config scheme =
  {
    scheme;
    announce_period = 1.0;
    fanout = 3;
    num_witnesses = 8;
    audit_period = 5.0;
  }

(* One tamper-evident log entry: the hash chain commits to the full
   send/receive history. *)
type entry = {
  seq : int;
  kind : int; (* 0 = send, 1 = recv *)
  peer : int;
  msg_hash : string;
  chain : string;
}

type t = {
  config : config;
  net : Network.t;
  index : int;
  witnesses : int list;
  signer : Signer.t;
  flood : Flood.t;
  mutable log_rev : entry list;
  mutable log_len : int;
  mutable top_chain : string;
  (* witness side: per-audited-node state *)
  audited_next : (int, int) Hashtbl.t; (* node -> next seq to fetch *)
  audited_chain : (int, string) Hashtbl.t;
  mutable audits_ok : bool;
  rng : Rng.t;
}

let overhead_tags =
  [ "pr:mempool"; "pr:getdata"; "pr:auth"; "pr:ack"; "pr:audit-req"; "pr:log" ]

let chain_hash prev ~seq ~kind ~peer ~msg_hash =
  let w = Writer.create ~initial_size:64 () in
  Writer.fixed w prev;
  Writer.varint w seq;
  Writer.u8 w kind;
  Writer.varint w peer;
  Writer.fixed w msg_hash;
  Sha256.digest (Writer.contents w)

let append_log t ~kind ~peer ~payload =
  let seq = t.log_len in
  let msg_hash = Sha256.digest payload in
  let chain = chain_hash t.top_chain ~seq ~kind ~peer ~msg_hash in
  t.log_rev <- { seq; kind; peer; msg_hash; chain } :: t.log_rev;
  t.log_len <- t.log_len + 1;
  t.top_chain <- chain

(* Authenticator: signed (seq, top hash) — attached to every message. *)
let authenticator t =
  let w = Writer.create ~initial_size:128 () in
  Writer.varint w t.log_len;
  Writer.fixed w t.top_chain;
  let body = Writer.contents w in
  let signature = Signer.sign t.signer body in
  let out = Writer.create ~initial_size:128 () in
  Writer.bytes out body;
  Writer.fixed out signature;
  Writer.contents out

let encode_entry w e =
  Writer.varint w e.seq;
  Writer.u8 w e.kind;
  Writer.varint w e.peer;
  Writer.fixed w e.msg_hash;
  Writer.fixed w e.chain

let decode_entry r =
  let seq = Reader.varint r in
  let kind = Reader.u8 r in
  let peer = Reader.varint r in
  let msg_hash = Reader.fixed r 32 in
  let chain = Reader.fixed r 32 in
  { seq; kind; peer; msg_hash; chain }

let create config ~net ~index ~neighbors ~witnesses ~signer =
  let flood_config =
    {
      Flood.scheme = config.scheme;
      announce_period = config.announce_period;
      fanout = config.fanout;
      tag_prefix = "pr";
    }
  in
  let flood = Flood.create flood_config ~net ~index ~neighbors in
  let t =
    {
      config;
      net;
      index;
      witnesses;
      signer;
      flood;
      log_rev = [];
      log_len = 0;
      top_chain = Sha256.digest "peerreview-genesis";
      audited_next = Hashtbl.create 8;
      audited_chain = Hashtbl.create 8;
      audits_ok = true;
      rng = Rng.split (Network.rng net);
    }
  in
  (* Log every flood message and attach authenticators to sends; ack
     receipts with our own authenticator. *)
  Flood.set_observer flood (fun ~dir ~peer ~tag:_ ~payload ->
      match dir with
      | `Send ->
          append_log t ~kind:0 ~peer ~payload;
          Network.send t.net ~src:t.index ~dst:peer ~tag:"pr:auth"
            (authenticator t)
      | `Recv ->
          append_log t ~kind:1 ~peer ~payload;
          Network.send t.net ~src:t.index ~dst:peer ~tag:"pr:ack"
            (authenticator t));
  t

let submit_tx t tx = Flood.submit_tx t.flood tx
let mempool_size t = Flood.mempool_size t.flood
let log_length t = t.log_len
let on_tx_content t f = Flood.on_tx_content t.flood f
let audits_ok t = t.audits_ok

let handle_audit_request t ~from payload =
  match
    let r = Reader.of_string payload in
    let since = Reader.varint r in
    Reader.expect_end r;
    since
  with
  | exception Reader.Malformed _ -> ()
  | since ->
      let entries =
        List.filter (fun e -> e.seq >= since) (List.rev t.log_rev)
      in
      let w = Writer.create ~initial_size:(80 * List.length entries) () in
      Writer.list w (encode_entry w) entries;
      Writer.fixed w (authenticator t);
      Network.send t.net ~src:t.index ~dst:from ~tag:"pr:log"
        (Writer.contents w)

let handle_log t ~from payload =
  match
    let r = Reader.of_string payload in
    let entries = Reader.list r decode_entry in
    entries
  with
  | exception Reader.Malformed _ -> t.audits_ok <- false
  | entries ->
      (* Replay the hash chain from the last audited point. *)
      let expected_chain =
        Option.value
          (Hashtbl.find_opt t.audited_chain from)
          ~default:(Sha256.digest "peerreview-genesis")
      in
      let chain = ref expected_chain in
      let ok =
        List.for_all
          (fun e ->
            let c =
              chain_hash !chain ~seq:e.seq ~kind:e.kind ~peer:e.peer
                ~msg_hash:e.msg_hash
            in
            let valid = String.equal c e.chain in
            if valid then chain := c;
            valid)
          entries
      in
      if ok then begin
        (match List.rev entries with
        | last :: _ ->
            Hashtbl.replace t.audited_next from (last.seq + 1);
            Hashtbl.replace t.audited_chain from last.chain
        | [] -> ())
      end
      else t.audits_ok <- false

let handle t net ~from ~tag payload =
  match tag with
  | "pr:auth" | "pr:ack" -> () (* verified lazily during audits *)
  | "pr:audit-req" -> handle_audit_request t ~from payload
  | "pr:log" -> handle_log t ~from payload
  | _ -> Flood.handle t.flood net ~from ~tag payload

let rec audit_round t =
  (* As witness, fetch the new log segment of each node we audit. *)
  List.iter
    (fun node ->
      let since = Option.value (Hashtbl.find_opt t.audited_next node) ~default:0 in
      let w = Writer.create ~initial_size:8 () in
      Writer.varint w since;
      Network.send t.net ~src:t.index ~dst:node ~tag:"pr:audit-req"
        (Writer.contents w))
    t.witnesses;
  Network.schedule t.net ~delay:t.config.audit_period (fun _ -> audit_round t)

let start t =
  Flood.start t.flood;
  (* Replace the flood handler with ours (which delegates). *)
  Network.set_handler t.net t.index (handle t);
  if t.witnesses <> [] then
    Network.schedule t.net
      ~delay:(Rng.float t.rng t.config.audit_period)
      (fun _ -> audit_round t)
