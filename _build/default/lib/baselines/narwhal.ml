module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer
module Sha256 = Lo_crypto.Sha256
module Tx = Lo_core.Tx

type config = {
  scheme : Signer.scheme;
  batch_period : float;
  quorum_fraction : float;
}

let default_config scheme =
  { scheme; batch_period = 0.5; quorum_fraction = 2. /. 3. }

type batch = { digest : string; txs : Tx.t list }

type t = {
  config : config;
  net : Network.t;
  index : int;
  num_nodes : int;
  signer : Signer.t;
  rng : Rng.t;
  mutable fresh : Tx.t list; (* awaiting batching *)
  batches : (string, batch) Hashtbl.t; (* digest -> batch *)
  acks : (string, int ref) Hashtbl.t; (* own batches: ack counts *)
  certified : (string, unit) Hashtbl.t; (* own batches already in a header *)
  committed : (string, unit) Hashtbl.t; (* tx ids seen in headers *)
  txs_seen : (string, unit) Hashtbl.t;
  mutable headers : int;
  mutable round : int;
  mutable on_content : Tx.t -> now:float -> unit;
  mutable on_committed : string -> now:float -> unit;
}

let overhead_tags = [ "nw:ack"; "nw:header"; "nw:batch-req" ]

let create config ~net ~index ~num_nodes ~signer =
  {
    config;
    net;
    index;
    num_nodes;
    signer;
    rng = Rng.split (Network.rng net);
    fresh = [];
    batches = Hashtbl.create 64;
    acks = Hashtbl.create 16;
    certified = Hashtbl.create 16;
    committed = Hashtbl.create 256;
    txs_seen = Hashtbl.create 256;
    headers = 0;
    round = 0;
    on_content = (fun _ ~now:_ -> ());
    on_committed = (fun _ ~now:_ -> ());
  }

let on_tx_content t f = t.on_content <- f
let on_tx_committed t f = t.on_committed <- f
let mempool_size t = Hashtbl.length t.txs_seen
let headers_seen t = t.headers

let note_tx t tx =
  if not (Hashtbl.mem t.txs_seen tx.Tx.id) then begin
    Hashtbl.add t.txs_seen tx.Tx.id ();
    t.on_content tx ~now:(Network.now t.net)
  end

let submit_tx t tx =
  match Tx.prevalidate t.config.scheme tx with
  | Error _ -> ()
  | Ok () ->
      if not (Hashtbl.mem t.txs_seen tx.Tx.id) then begin
        note_tx t tx;
        t.fresh <- tx :: t.fresh
      end

let encode_batch batch =
  let w = Writer.create ~initial_size:512 () in
  Writer.fixed w batch.digest;
  Writer.list w (Tx.encode w) batch.txs;
  Writer.contents w

let decode_batch payload =
  let r = Reader.of_string payload in
  let digest = Reader.fixed r 32 in
  let txs = Reader.list r Tx.decode in
  Reader.expect_end r;
  { digest; txs }

let broadcast t ~tag payload =
  for dst = 0 to t.num_nodes - 1 do
    if dst <> t.index then Network.send t.net ~src:t.index ~dst ~tag payload
  done

let quorum t =
  int_of_float (ceil (t.config.quorum_fraction *. float_of_int t.num_nodes))

let make_header t digest =
  (* Header: creator-signed reference to a certified batch. *)
  let w = Writer.create ~initial_size:128 () in
  Writer.varint w t.index;
  Writer.fixed w digest;
  let body = Writer.contents w in
  let signature = Signer.sign t.signer body in
  let out = Writer.create ~initial_size:200 () in
  Writer.bytes out body;
  Writer.fixed out signature;
  Writer.contents out

let handle t _net ~from ~tag payload =
  match tag with
  | "nw:batch" -> begin
      match decode_batch payload with
      | exception Reader.Malformed _ -> ()
      | batch ->
          if not (Hashtbl.mem t.batches batch.digest) then begin
            Hashtbl.replace t.batches batch.digest batch;
            List.iter (note_tx t) batch.txs
          end;
          (* Acknowledge (signed). *)
          let ack = Signer.sign t.signer batch.digest in
          Network.send t.net ~src:t.index ~dst:from ~tag:"nw:ack"
            (batch.digest ^ ack)
    end
  | "nw:ack" ->
      if String.length payload >= 32 then begin
        let digest = String.sub payload 0 32 in
        match Hashtbl.find_opt t.acks digest with
        | None -> ()
        | Some count ->
            incr count;
            if !count >= quorum t && not (Hashtbl.mem t.certified digest) then begin
              Hashtbl.add t.certified digest ();
              let header = make_header t digest in
              broadcast t ~tag:"nw:header" header;
              (* Local commit of own header. *)
              (match Hashtbl.find_opt t.batches digest with
              | Some batch ->
                  List.iter
                    (fun tx ->
                      if not (Hashtbl.mem t.committed tx.Tx.id) then begin
                        Hashtbl.add t.committed tx.Tx.id ();
                        t.on_committed tx.Tx.id ~now:(Network.now t.net)
                      end)
                    batch.txs
              | None -> ());
              t.headers <- t.headers + 1
            end
      end
  | "nw:header" -> begin
      match
        let r = Reader.of_string payload in
        let body = Reader.bytes r in
        let _sig = Reader.fixed r Signer.signature_size in
        Reader.expect_end r;
        let rb = Reader.of_string body in
        let creator = Reader.varint rb in
        let digest = Reader.fixed rb 32 in
        (creator, digest)
      with
      | exception Reader.Malformed _ -> ()
      | creator, digest ->
          t.headers <- t.headers + 1;
          (match Hashtbl.find_opt t.batches digest with
          | Some batch ->
              List.iter
                (fun tx ->
                  if not (Hashtbl.mem t.committed tx.Tx.id) then begin
                    Hashtbl.add t.committed tx.Tx.id ();
                    t.on_committed tx.Tx.id ~now:(Network.now t.net)
                  end)
                batch.txs
          | None ->
              (* Fetch the missing batch from the header's originator. *)
              if creator >= 0 && creator < t.num_nodes && creator <> t.index
              then
                Network.send t.net ~src:t.index ~dst:creator
                  ~tag:"nw:batch-req" digest)
    end
  | "nw:batch-req" -> begin
      match Hashtbl.find_opt t.batches payload with
      | Some batch ->
          Network.send t.net ~src:t.index ~dst:from ~tag:"nw:batch"
            (encode_batch batch)
      | None -> ()
    end
  | _ -> ()

let rec batch_round t =
  (* Narwhal's DAG advances every round on every validator: a batch is
     produced each period even when no fresh transactions arrived, and
     the quorum of acknowledgements is gathered regardless. This
     round-based quorum traffic is the O(n^2) cost the paper measures. *)
  let txs = List.rev t.fresh in
  t.fresh <- [];
  t.round <- t.round + 1;
  let digest =
    Sha256.digest_list
      (Printf.sprintf "nw-round-%d-%d" t.index t.round
      :: List.map (fun tx -> tx.Tx.id) txs)
  in
  let batch = { digest; txs } in
  Hashtbl.replace t.batches digest batch;
  Hashtbl.replace t.acks digest (ref 0);
  broadcast t ~tag:"nw:batch" (encode_batch batch);
  Network.schedule t.net ~delay:t.config.batch_period (fun _ -> batch_round t)

let start t =
  Network.set_handler t.net t.index (handle t);
  Network.schedule t.net
    ~delay:(Rng.float t.rng t.config.batch_period)
    (fun _ -> batch_round t)
