(** PeerReview-style accountability baseline (Haeberlen et al., SOSP'07;
    paper Sec. 6.4).

    Dissemination is the same flooding exchange as {!Flood}; on top of
    it every node keeps a tamper-evident, hash-chained log of all
    messages it sends and receives, attaches a signed authenticator to
    every message, and is audited by [num_witnesses] random witnesses
    who periodically fetch and replay the new portion of the log. The
    authenticators and log transfers are the accountability overhead
    that Fig. 9 shows dwarfing LØ's commitments (~20x). *)

type config = {
  scheme : Lo_crypto.Signer.scheme;
  announce_period : float;
  fanout : int;
  num_witnesses : int;  (** paper: 8 *)
  audit_period : float;  (** seconds between witness audits *)
}

val default_config : Lo_crypto.Signer.scheme -> config

type t

val create :
  config ->
  net:Lo_net.Network.t ->
  index:int ->
  neighbors:int list ->
  witnesses:int list ->
  signer:Lo_crypto.Signer.t ->
  t
(** [witnesses] is the set of nodes this node audits as a witness (the
    harness assigns each node [num_witnesses] random witnesses and
    passes the inverse mapping here). *)

val start : t -> unit
val submit_tx : t -> Lo_core.Tx.t -> unit
val mempool_size : t -> int
val log_length : t -> int
val on_tx_content : t -> (Lo_core.Tx.t -> now:float -> unit) -> unit

val audits_ok : t -> bool
(** Whether every audit this node performed verified (honest runs must
    stay true). *)

val overhead_tags : string list
