module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Tx = Lo_core.Tx

type config = {
  scheme : Lo_crypto.Signer.scheme;
  announce_period : float;
  fanout : int;
  tag_prefix : string;
}

let default_config scheme =
  { scheme; announce_period = 1.0; fanout = 3; tag_prefix = "flood" }

type t = {
  config : config;
  net : Network.t;
  index : int;
  neighbors : int list;
  rng : Rng.t;
  txs : (string, Tx.t) Hashtbl.t; (* by full txid *)
  mutable on_content : Tx.t -> now:float -> unit;
  mutable observer :
    dir:[ `Send | `Recv ] -> peer:int -> tag:string -> payload:string -> unit;
}

let create config ~net ~index ~neighbors =
  {
    config;
    net;
    index;
    neighbors;
    rng = Rng.split (Network.rng net);
    txs = Hashtbl.create 256;
    on_content = (fun _ ~now:_ -> ());
    observer = (fun ~dir:_ ~peer:_ ~tag:_ ~payload:_ -> ());
  }

let mempool_size t = Hashtbl.length t.txs
let has_tx t id = Hashtbl.mem t.txs id
let on_tx_content t f = t.on_content <- f
let set_observer t f = t.observer <- f
let overhead_tags = [ "flood:mempool"; "flood:getdata" ]

let tag t suffix = t.config.tag_prefix ^ ":" ^ suffix

let send t ~dst ~suffix payload =
  let tag = tag t suffix in
  t.observer ~dir:`Send ~peer:dst ~tag ~payload;
  Network.send t.net ~src:t.index ~dst ~tag payload

let encode_ids ids =
  let w = Writer.create ~initial_size:(32 * List.length ids) () in
  Writer.list w (Writer.fixed w) ids;
  Writer.contents w

let decode_ids s =
  let r = Reader.of_string s in
  let ids = Reader.list r (fun r -> Reader.fixed r 32) in
  Reader.expect_end r;
  ids

let store t tx =
  if not (Hashtbl.mem t.txs tx.Tx.id) then begin
    Hashtbl.add t.txs tx.Tx.id tx;
    t.on_content tx ~now:(Network.now t.net)
  end

let submit_tx t tx =
  match Tx.prevalidate t.config.scheme tx with
  | Ok () -> store t tx
  | Error _ -> ()

let handle t _net ~from ~tag:msg_tag payload =
  t.observer ~dir:`Recv ~peer:from ~tag:msg_tag ~payload;
  let suffix =
    let prefix_len = String.length t.config.tag_prefix + 1 in
    if String.length msg_tag > prefix_len then
      String.sub msg_tag prefix_len (String.length msg_tag - prefix_len)
    else ""
  in
  match suffix with
  | "mempool" -> begin
      match decode_ids payload with
      | exception Reader.Malformed _ -> ()
      | ids ->
          let unknown = List.filter (fun id -> not (Hashtbl.mem t.txs id)) ids in
          if unknown <> [] then send t ~dst:from ~suffix:"getdata" (encode_ids unknown)
    end
  | "getdata" -> begin
      match decode_ids payload with
      | exception Reader.Malformed _ -> ()
      | ids ->
          let have = List.filter_map (Hashtbl.find_opt t.txs) ids in
          if have <> [] then begin
            let w = Writer.create () in
            Writer.list w (Tx.encode w) have;
            send t ~dst:from ~suffix:"tx" (Writer.contents w)
          end
    end
  | "tx" -> begin
      match
        let r = Reader.of_string payload in
        let txs = Reader.list r Tx.decode in
        Reader.expect_end r;
        txs
      with
      | exception Reader.Malformed _ -> ()
      | txs ->
          List.iter
            (fun tx ->
              match Tx.prevalidate t.config.scheme tx with
              | Ok () -> store t tx
              | Error _ -> ())
            txs
    end
  | _ -> ()

let rec announce_round t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.txs [] in
  if ids <> [] then begin
    let payload = encode_ids ids in
    let targets =
      Rng.sample_without_replacement t.rng t.config.fanout t.neighbors
    in
    List.iter (fun dst -> send t ~dst ~suffix:"mempool" payload) targets
  end;
  Network.schedule t.net ~delay:t.config.announce_period (fun _ ->
      announce_round t)

let start t =
  Network.set_handler t.net t.index (handle t);
  Network.schedule t.net
    ~delay:(Rng.float t.rng t.config.announce_period)
    (fun _ -> announce_round t)
