lib/baselines/flood.mli: Lo_core Lo_crypto Lo_net
