lib/baselines/peer_review.ml: Flood Hashtbl List Lo_codec Lo_crypto Lo_net Option String
