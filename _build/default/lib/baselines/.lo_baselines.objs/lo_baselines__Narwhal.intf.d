lib/baselines/narwhal.mli: Lo_core Lo_crypto Lo_net
