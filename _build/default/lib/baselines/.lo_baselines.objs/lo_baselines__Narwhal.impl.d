lib/baselines/narwhal.ml: Hashtbl List Lo_codec Lo_core Lo_crypto Lo_net Printf String
