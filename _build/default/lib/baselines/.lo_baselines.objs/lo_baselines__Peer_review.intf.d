lib/baselines/peer_review.mli: Lo_core Lo_crypto Lo_net
