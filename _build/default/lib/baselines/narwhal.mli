(** Simplified Narwhal mempool (Danezis et al., EuroSys'22; paper
    Sec. 6.4).

    Every [batch_period] seconds a node assembles its fresh transactions
    into a batch and reliably broadcasts it to the whole network. Once a
    batch has acknowledgements from more than two thirds of the nodes it
    is referenced in a header, which is broadcast as well; nodes missing
    a referenced batch fetch it from the header's originator. The
    quorum-acknowledgement traffic is what makes Narwhal 7-10x more
    expensive than LØ in Fig. 9 while winning 1-2 s of latency. *)

type config = {
  scheme : Lo_crypto.Signer.scheme;
  batch_period : float;  (** paper: 0.5 s *)
  quorum_fraction : float;  (** paper: 2/3 *)
}

val default_config : Lo_crypto.Signer.scheme -> config

type t

val create :
  config ->
  net:Lo_net.Network.t ->
  index:int ->
  num_nodes:int ->
  signer:Lo_crypto.Signer.t ->
  t

val start : t -> unit
val submit_tx : t -> Lo_core.Tx.t -> unit

val on_tx_content : t -> (Lo_core.Tx.t -> now:float -> unit) -> unit
(** Fired when a transaction's content first reaches this node (batch
    arrival). *)

val on_tx_committed : t -> (string -> now:float -> unit) -> unit
(** Fired per transaction id when a header referencing its batch
    arrives — the Narwhal notion of mempool inclusion. *)

val mempool_size : t -> int
val headers_seen : t -> int

val overhead_tags : string list
(** Acks, headers and batch re-requests; batch content is excluded like
    all protocols' tx content. *)
