(** Flooding mempool baseline (paper Sec. 6.4, "Flood").

    The classical exchange: miners periodically relay a "Mempool"
    message listing their current transaction hashes; receivers request
    the transactions they do not recognise and get the content back.
    Announcement and request bytes are the protocol overhead the paper
    compares against (tx content itself is excluded from Fig. 9 for all
    protocols). *)

type config = {
  scheme : Lo_crypto.Signer.scheme;
  announce_period : float;  (** seconds between mempool announcements *)
  fanout : int;  (** neighbours announced to per round *)
  tag_prefix : string;
      (** message tag prefix, so protocols composed on top of flooding
          (PeerReview) account their traffic separately *)
}

val default_config : Lo_crypto.Signer.scheme -> config

type t

val create :
  config ->
  net:Lo_net.Network.t ->
  index:int ->
  neighbors:int list ->
  t

val start : t -> unit
val submit_tx : t -> Lo_core.Tx.t -> unit
val mempool_size : t -> int
val has_tx : t -> string -> bool

val on_tx_content : t -> (Lo_core.Tx.t -> now:float -> unit) -> unit
(** Hook fired when new content enters the mempool. *)

val set_observer :
  t ->
  (dir:[ `Send | `Recv ] -> peer:int -> tag:string -> payload:string -> unit) ->
  unit
(** Observe every protocol message (PeerReview logs them). *)

val handle : t -> Lo_net.Network.handler
(** The message handler, exposed so a wrapping protocol can delegate. *)

val overhead_tags : string list
(** Tags counted as protocol overhead (excludes content). *)
