(** Binary decoder matching {!Writer}.

    All decoding raises {!Malformed} on truncated or invalid input; the
    protocol layer treats such input as evidence of a faulty sender. *)

exception Malformed of string

type t

val of_string : string -> t
val remaining : t -> int
val at_end : t -> bool
val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val u64 : t -> int
val varint : t -> int
val bool : t -> bool
val fixed : t -> int -> string
val bytes : t -> string
val list : t -> (t -> 'a) -> 'a list

val expect_end : t -> unit
(** @raise Malformed if trailing bytes remain. *)
