lib/codec/reader.ml: Char List String
