lib/codec/writer.ml: Buffer Char List String
