lib/codec/writer.mli:
