lib/codec/reader.mli:
