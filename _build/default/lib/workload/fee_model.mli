(** Transaction-fee model.

    Stands in for the Ethereum fee trace used by the paper ([Pierro &
    Rocha 2019]): empirical gas prices are heavy-tailed and well
    approximated by a log-normal distribution. Fees are integer
    "gwei-like" units; only their ranking matters to the experiments
    (the Highest-Fee policy and the fee-threshold filter). *)

type t = { mu : float; sigma : float; minimum : int }

val default : t
(** mu/sigma calibrated to give a median around 20 units with a long
    tail into the thousands, minimum fee 1. *)

val draw : Lo_net.Rng.t -> t -> int

val quantile : t -> float -> int
(** Closed-form log-normal quantile (for choosing thresholds in
    experiments); clamped to [minimum]. *)
