(** Synthetic transaction workload generation.

    Produces the stream of client transactions injected into a
    simulation: Poisson arrivals at a configurable rate, log-normal
    fees, fixed 250-byte payloads (the paper's per-transaction size),
    and an origin node chosen uniformly — the client submits to that
    miner first (Stage I of the paper's pipeline). *)

type spec = {
  created_at : float;  (** submission time, seconds from run start *)
  origin : int;  (** node the client submits to *)
  fee : int;
  size : int;  (** payload bytes *)
  nonce : int;  (** unique per spec; seeds the payload *)
}

type config = {
  rate : float;  (** transactions per second *)
  duration : float;  (** seconds of workload *)
  tx_size : int;  (** payload size; the paper uses 250 bytes *)
  fee_model : Fee_model.t;
}

val default_config : config
(** 20 tx/s (the paper's default), 60 s, 250-byte transactions. *)

val generate : Lo_net.Rng.t -> config -> num_nodes:int -> spec list
(** Specs ordered by [created_at]. *)

val payload : spec -> string
(** Deterministic pseudo-payload of [size] bytes derived from the
    nonce. *)
