module Rng = Lo_net.Rng

type t = { mu : float; sigma : float; minimum : int }

let default = { mu = 3.0; sigma = 1.1; minimum = 1 }

let draw rng t =
  let v = Rng.lognormal rng ~mu:t.mu ~sigma:t.sigma in
  max t.minimum (int_of_float (Float.round v))

(* Inverse error function via the Giles (2012) polynomial approximation;
   accurate to ~1e-6, far beyond what threshold selection needs. *)
let erfinv x =
  if x <= -1. || x >= 1. then invalid_arg "erfinv: domain";
  let w = -.log ((1. -. x) *. (1. +. x)) in
  if w < 5. then begin
    let w = w -. 2.5 in
    let p = 2.81022636e-08 in
    let p = 3.43273939e-07 +. (p *. w) in
    let p = -3.5233877e-06 +. (p *. w) in
    let p = -4.39150654e-06 +. (p *. w) in
    let p = 0.00021858087 +. (p *. w) in
    let p = -0.00125372503 +. (p *. w) in
    let p = -0.00417768164 +. (p *. w) in
    let p = 0.246640727 +. (p *. w) in
    let p = 1.50140941 +. (p *. w) in
    p *. x
  end
  else begin
    let w = sqrt w -. 3. in
    let p = -0.000200214257 in
    let p = 0.000100950558 +. (p *. w) in
    let p = 0.00134934322 +. (p *. w) in
    let p = -0.00367342844 +. (p *. w) in
    let p = 0.00573950773 +. (p *. w) in
    let p = -0.0076224613 +. (p *. w) in
    let p = 0.00943887047 +. (p *. w) in
    let p = 1.00167406 +. (p *. w) in
    let p = 2.83297682 +. (p *. w) in
    p *. x
  end

let quantile t q =
  if q <= 0. || q >= 1. then invalid_arg "Fee_model.quantile: q in (0,1)";
  let z = sqrt 2. *. erfinv ((2. *. q) -. 1.) in
  max t.minimum (int_of_float (Float.round (exp (t.mu +. (t.sigma *. z)))))
