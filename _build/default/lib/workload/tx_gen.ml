module Rng = Lo_net.Rng

type spec = {
  created_at : float;
  origin : int;
  fee : int;
  size : int;
  nonce : int;
}

type config = {
  rate : float;
  duration : float;
  tx_size : int;
  fee_model : Fee_model.t;
}

let default_config =
  { rate = 20.; duration = 60.; tx_size = 250; fee_model = Fee_model.default }

let generate rng config ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Tx_gen.generate";
  let times = Arrival.poisson_times rng ~rate:config.rate ~duration:config.duration in
  List.mapi
    (fun i t ->
      {
        created_at = t;
        origin = Rng.int rng num_nodes;
        fee = Fee_model.draw rng config.fee_model;
        size = config.tx_size;
        nonce = i;
      })
    times

let payload spec =
  (* Cheap deterministic filler: repeat a nonce-derived pattern. *)
  let seed = Printf.sprintf "tx-payload-%d-%d" spec.nonce spec.fee in
  let block = Lo_crypto.Sha256.digest seed in
  let buf = Buffer.create spec.size in
  while Buffer.length buf < spec.size do
    Buffer.add_string buf block
  done;
  Buffer.sub buf 0 spec.size
