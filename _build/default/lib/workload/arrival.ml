module Rng = Lo_net.Rng

let poisson_times rng ~rate ~duration =
  if rate <= 0. || duration <= 0. then []
  else begin
    let mean = 1. /. rate in
    let rec go t acc =
      let t = t +. Rng.exponential rng ~mean in
      if t >= duration then List.rev acc else go t (t :: acc)
    in
    go 0. []
  end

let uniform_times ~rate ~duration =
  if rate <= 0. || duration <= 0. then []
  else begin
    let step = 1. /. rate in
    let n = int_of_float (duration /. step) in
    List.init n (fun i -> float_of_int i *. step)
    |> List.filter (fun t -> t < duration)
  end
