(** Transaction-trace replay.

    The paper injects its workload "based on a realistic dataset of
    Ethereum transactions" [Pierro & Rocha 2019]. This module replays
    such a trace when one is available and synthesises a statistically
    matched one when it is not, in a simple CSV format:

    {v timestamp_seconds,fee,size_bytes v}

    one transaction per line, timestamps non-decreasing, '#' comments
    allowed. A parsed trace converts to the same {!Tx_gen.spec} stream
    the rest of the harness consumes, so simulations are agnostic to
    whether their workload came from a file or from the synthetic
    model. *)

type record = { at : float; fee : int; size : int }

val parse : string -> (record list, string) result
(** Parse CSV text. Malformed lines yield [Error] with a message naming
    the first offending line. *)

val render : record list -> string
(** Inverse of {!parse} (with a header comment). *)

val synthesize :
  Lo_net.Rng.t -> rate:float -> duration:float -> ?fee_model:Fee_model.t ->
  ?tx_size:int -> unit -> record list
(** An Ethereum-like trace from the synthetic model: Poisson arrivals,
    log-normal fees, fixed sizes — the fallback the reproduction runs
    on. *)

val to_specs : Lo_net.Rng.t -> record list -> num_nodes:int -> Tx_gen.spec list
(** Attach uniformly random origin nodes, preserving timestamps, fees
    and sizes. *)

val stats : record list -> (int * float * int * int) option
(** (count, duration, min fee, max fee); [None] for the empty trace. *)
