lib/workload/tx_gen.mli: Fee_model Lo_net
