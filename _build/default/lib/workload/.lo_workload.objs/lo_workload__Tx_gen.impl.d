lib/workload/tx_gen.ml: Arrival Buffer Fee_model List Lo_crypto Lo_net Printf
