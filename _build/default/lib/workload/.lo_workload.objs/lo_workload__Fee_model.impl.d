lib/workload/fee_model.ml: Float Lo_net
