lib/workload/fee_model.mli: Lo_net
