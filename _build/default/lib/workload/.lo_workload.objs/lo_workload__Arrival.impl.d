lib/workload/arrival.ml: List Lo_net
