lib/workload/trace.mli: Fee_model Lo_net Tx_gen
