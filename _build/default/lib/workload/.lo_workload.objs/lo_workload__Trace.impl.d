lib/workload/trace.ml: Arrival Buffer Fee_model List Lo_net Printf String Tx_gen
