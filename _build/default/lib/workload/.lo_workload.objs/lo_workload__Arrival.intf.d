lib/workload/arrival.mli: Lo_net
