module Rng = Lo_net.Rng

type record = { at : float; fee : int; size : int }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc prev_at = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc prev_at rest
        else
          match String.split_on_char ',' line with
          | [ at; fee; size ] -> begin
              match
                (float_of_string_opt (String.trim at),
                 int_of_string_opt (String.trim fee),
                 int_of_string_opt (String.trim size))
              with
              | Some at, Some fee, Some size
                when at >= prev_at && fee >= 0 && size > 0 ->
                  go (lineno + 1) ({ at; fee; size } :: acc) at rest
              | Some at, _, _ when at < prev_at ->
                  Error (Printf.sprintf "line %d: timestamps must be non-decreasing" lineno)
              | _ -> Error (Printf.sprintf "line %d: malformed fields" lineno)
            end
          | _ -> Error (Printf.sprintf "line %d: expected 3 comma-separated fields" lineno)
      end
  in
  go 1 [] neg_infinity lines

let render records =
  let buf = Buffer.create (32 * List.length records) in
  Buffer.add_string buf "# timestamp_seconds,fee,size_bytes\n";
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "%.6f,%d,%d\n" r.at r.fee r.size))
    records;
  Buffer.contents buf

let synthesize rng ~rate ~duration ?(fee_model = Fee_model.default)
    ?(tx_size = 250) () =
  Arrival.poisson_times rng ~rate ~duration
  |> List.map (fun at -> { at; fee = Fee_model.draw rng fee_model; size = tx_size })

let to_specs rng records ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Trace.to_specs";
  List.mapi
    (fun i r ->
      {
        Tx_gen.created_at = r.at;
        origin = Rng.int rng num_nodes;
        fee = r.fee;
        size = r.size;
        nonce = i;
      })
    records

let stats records =
  match records with
  | [] -> None
  | first :: _ ->
      let count = List.length records in
      let last = List.nth records (count - 1) in
      let min_fee = List.fold_left (fun m r -> min m r.fee) max_int records in
      let max_fee = List.fold_left (fun m r -> max m r.fee) 0 records in
      Some (count, last.at -. first.at, min_fee, max_fee)
