(** Poisson arrival schedules. *)

val poisson_times : Lo_net.Rng.t -> rate:float -> duration:float -> float list
(** Event timestamps of a homogeneous Poisson process with [rate]
    events/second over [\[0, duration)], in increasing order. *)

val uniform_times : rate:float -> duration:float -> float list
(** Deterministic evenly spaced arrivals at the same average rate (used
    when an experiment needs a perfectly steady workload). *)
