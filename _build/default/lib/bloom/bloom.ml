module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t = {
  bits : Bytes.t;
  nbits : int;
  hashes : int;
  mutable count : int;
}

let create ~bits ~hashes =
  if bits <= 0 || hashes <= 0 then invalid_arg "Bloom.create";
  let nbytes = (bits + 7) / 8 in
  { bits = Bytes.make nbytes '\000'; nbits = nbytes * 8; hashes; count = 0 }

(* Two independent 30-bit values from the item bytes; items shorter than
   8 bytes are rehashed to get enough material. *)
let seeds item =
  let material =
    if String.length item >= 8 then item else Lo_crypto.Sha256.digest item
  in
  let word off =
    let v = ref 0 in
    for i = 0 to 3 do
      v := (!v lsl 8) lor Char.code material.[off + i]
    done;
    !v
  in
  (word 0, word 4)

let probe t item i =
  let h1, h2 = seeds item in
  (h1 + (i * h2) + (i * i)) mod t.nbits

let set_bit t pos =
  let byte = pos / 8 and bit = pos mod 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t pos =
  let byte = pos / 8 and bit = pos mod 8 in
  Char.code (Bytes.get t.bits byte) lsr bit land 1 = 1

let add t item =
  for i = 0 to t.hashes - 1 do
    set_bit t (probe t item i)
  done;
  t.count <- t.count + 1

let mem t item =
  let rec go i = i >= t.hashes || (get_bit t (probe t item i) && go (i + 1)) in
  go 0

let count t = t.count

let false_positive_rate t =
  let k = float_of_int t.hashes in
  let n = float_of_int t.count in
  let m = float_of_int t.nbits in
  (1. -. exp (-.k *. n /. m)) ** k

let encode w t =
  Writer.varint w t.nbits;
  Writer.varint w t.hashes;
  Writer.varint w t.count;
  Writer.fixed w (Bytes.to_string t.bits)

let decode r =
  let nbits = Reader.varint r in
  let hashes = Reader.varint r in
  let count = Reader.varint r in
  if nbits <= 0 || nbits mod 8 <> 0 || hashes <= 0 then
    raise (Reader.Malformed "bloom header");
  let data = Reader.fixed r (nbits / 8) in
  { bits = Bytes.of_string data; nbits; hashes; count }
