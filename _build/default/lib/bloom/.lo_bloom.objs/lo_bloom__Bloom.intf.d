lib/bloom/bloom.mli: Lo_codec
