lib/bloom/bloom_clock.ml: Array Char Int64 Lo_codec Lo_crypto String
