lib/bloom/bloom.ml: Bytes Char Lo_codec Lo_crypto String
