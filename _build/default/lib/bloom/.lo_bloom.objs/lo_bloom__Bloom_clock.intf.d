lib/bloom/bloom_clock.mli: Lo_codec
