(** Classic Bloom filter over byte-string items.

    Used by the flooding baseline for duplicate suppression. Items are
    assumed to already be uniformly distributed (transaction ids are
    SHA-256 digests), so the [k] probe positions are derived from the
    item bytes by double hashing without further cryptographic work. *)

type t

val create : bits:int -> hashes:int -> t
(** [bits] is rounded up to a multiple of 8. *)

val add : t -> string -> unit
val mem : t -> string -> bool
val count : t -> int
(** Number of insertions performed (not distinct items). *)

val false_positive_rate : t -> float
(** Estimated current false-positive probability. *)

val encode : Lo_codec.Writer.t -> t -> unit
val decode : Lo_codec.Reader.t -> t
