module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t = { counters : int array; mutable count : int }
type order = Equal | Less | Greater | Concurrent

let create ?(cells = 32) () =
  if cells <= 0 then invalid_arg "Bloom_clock.create";
  { counters = Array.make cells 0; count = 0 }

let cells t = Array.length t.counters
let copy t = { counters = Array.copy t.counters; count = t.count }

let cell_of_item ~cells item =
  let material =
    if String.length item >= 8 then item else Lo_crypto.Sha256.digest item
  in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code material.[i]
  done;
  !v mod cells

let cell_of_int ~cells id =
  let z = Int64.mul (Int64.of_int id) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int z land max_int mod cells

let bump t cell =
  t.counters.(cell) <- t.counters.(cell) + 1;
  t.count <- t.count + 1

let add t item = bump t (cell_of_item ~cells:(cells t) item)
let add_int t id = bump t (cell_of_int ~cells:(cells t) id)

let get t i = t.counters.(i)
let count t = t.count

let compare_clocks a b =
  if cells a <> cells b then invalid_arg "Bloom_clock.compare_clocks: sizes";
  let some_less = ref false and some_greater = ref false in
  Array.iteri
    (fun i va ->
      let vb = b.counters.(i) in
      if va < vb then some_less := true
      else if va > vb then some_greater := true)
    a.counters;
  match (!some_less, !some_greater) with
  | false, false -> Equal
  | true, false -> Less
  | false, true -> Greater
  | true, true -> Concurrent

let dominates a b =
  match compare_clocks a b with Equal | Greater -> true | Less | Concurrent -> false

let diff_cells a b =
  if cells a <> cells b then invalid_arg "Bloom_clock.diff_cells: sizes";
  let acc = ref [] in
  for i = cells a - 1 downto 0 do
    if a.counters.(i) <> b.counters.(i) then acc := i :: !acc
  done;
  !acc

let estimate_difference a b =
  if cells a <> cells b then invalid_arg "Bloom_clock.estimate_difference: sizes";
  let total = ref 0 in
  Array.iteri
    (fun i va -> total := !total + abs (va - b.counters.(i)))
    a.counters;
  !total

let merge a b =
  if cells a <> cells b then invalid_arg "Bloom_clock.merge: sizes";
  {
    counters = Array.init (cells a) (fun i -> max a.counters.(i) b.counters.(i));
    count = max a.count b.count;
  }

(* Wire format: u16 cell count, u32 total, then one u16 per cell, as in
   the paper's 68-byte layout for 32 cells. *)
let encoded_size t = 2 + 4 + (2 * cells t)

let encode w t =
  Writer.u16 w (cells t);
  Writer.u32 w t.count;
  Array.iter (fun v -> Writer.u16 w (min v 0xFFFF)) t.counters

let decode r =
  let n = Reader.u16 r in
  if n = 0 then raise (Reader.Malformed "bloom clock: zero cells");
  let count = Reader.u32 r in
  let counters = Array.init n (fun _ -> Reader.u16 r) in
  { counters; count }
