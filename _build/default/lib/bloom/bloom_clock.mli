(** Bloom Clock (Ramabaja 2019): a counting Bloom filter used as a
    space-efficient logical clock over grow-only sets.

    In LØ a commitment carries the Bloom clock of all transaction ids the
    miner has ever committed to. Because commitments are append-only,
    clock comparison gives a fast consistency pre-check (an older
    commitment must be cell-wise [<=] a newer one from the same miner),
    and differing cells tell the reconciler which hash partitions need a
    Minisketch exchange. The paper uses 32 cells of 16-bit counters
    (68 bytes encoded); one hash per item, as described in Sec. 4.2. *)

type t

type order = Equal | Less | Greater | Concurrent
(** Result of the partial-order comparison of two clocks. *)

val create : ?cells:int -> unit -> t
(** Default 32 cells. *)

val cells : t -> int
val copy : t -> t

val cell_of_item : cells:int -> string -> int
(** The cell an item maps to; items are assumed uniformly distributed
    (transaction ids are digests). *)

val cell_of_int : cells:int -> int -> int
(** Cell for an integer item (a short transaction id); the id is mixed
    first so the cell is independent of the id's low bits, which the
    partitioned reconciler uses for splitting. *)

val add : t -> string -> unit

(** [add_int t id] adds an integer item (LØ commits to 32-bit short
    ids). *)
val add_int : t -> int -> unit
val get : t -> int -> int
val count : t -> int
(** Total number of items added. *)

val compare_clocks : t -> t -> order
(** Cell-wise comparison; [Concurrent] when neither dominates. *)

val dominates : t -> t -> bool
(** [dominates a b] iff every cell of [a] is [>=] the same cell of [b]. *)

val diff_cells : t -> t -> int list
(** Indices of cells whose counters differ; guides partitioned
    reconciliation. *)

val estimate_difference : t -> t -> int
(** Sum of absolute cell differences — an upper-bound estimate on the
    symmetric-difference size used for sketch-capacity selection. *)

val merge : t -> t -> t
(** Cell-wise maximum. *)

val encoded_size : t -> int
val encode : Lo_codec.Writer.t -> t -> unit
val decode : Lo_codec.Reader.t -> t
