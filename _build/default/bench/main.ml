(* Benchmark harness.

   Two layers, both run by default:

   1. Bechamel micro-benchmarks — one group per paper table/figure,
      timing the computational kernels behind it (sketch encode/decode
      for Fig. 10 and Sec. 6.5, commitment checks for Fig. 6, canonical
      ordering and block building for Fig. 8, message codecs for Fig. 9,
      crypto primitives underlying everything).

   2. The full simulation experiments regenerating every figure of the
      paper's evaluation (Sec. 6) at a laptop scale.

   Environment knobs:
     LO_BENCH_SCALE  — float multiplier on the experiment node count
                       (default 1.0 = 120 nodes; use 0.3 for a quick run)
     LO_BENCH_MICRO_ONLY=1 / LO_BENCH_SIM_ONLY=1 — run only one layer. *)

open Bechamel
open Toolkit
open Lo_core
module Signer = Lo_crypto.Signer

(* ----------------------------------------------------------------- *)
(* Fixtures                                                            *)
(* ----------------------------------------------------------------- *)

let scheme = Signer.simulation ()
let signer = Signer.make scheme ~seed:"bench"
let schnorr_signer = Signer.make Signer.schnorr ~seed:"bench"

let sample_tx =
  Tx.create ~signer ~fee:42 ~created_at:1.0 ~payload:(String.make 250 'x')

let sample_tx_bytes = Tx.to_string sample_tx

let mk_ids n seed =
  let rng = Lo_net.Rng.create seed in
  List.init n (fun _ -> 1 + Lo_net.Rng.int rng (Short_id.max_value - 1))

let loaded_log ids =
  let log = Commitment.Log.create ~signer () in
  List.iter (fun id -> ignore (Commitment.Log.append log ~source:None ~ids:[ id ])) ids;
  log

(* Digest pair for extension checks. *)
let digest_pair =
  let log = Commitment.Log.create ~signer () in
  ignore (Commitment.Log.append log ~source:None ~ids:(mk_ids 50 1));
  let older = Commitment.Log.current_digest log in
  ignore (Commitment.Log.append log ~source:None ~ids:(mk_ids 20 2));
  (older, Commitment.Log.current_digest log)

let sketch_pair diff =
  let shared = mk_ids 500 3 in
  let extra = mk_ids diff 4 in
  let a = Lo_sketch.Sketch.of_list ~capacity:(diff + 16) shared in
  let b = Lo_sketch.Sketch.of_list ~capacity:(diff + 16) (shared @ extra) in
  Lo_sketch.Sketch.merge a b

let staged = Staged.stage

(* ----------------------------------------------------------------- *)
(* Micro benchmark groups (one per table/figure)                       *)
(* ----------------------------------------------------------------- *)

let crypto_group =
  (* Substrate costs paid by every experiment. *)
  [
    Test.make ~name:"sha256-256B" (staged (fun () -> Lo_crypto.Sha256.digest sample_tx_bytes));
    Test.make ~name:"hmac-sha256" (staged (fun () -> Lo_crypto.Hmac.sha256 ~key:"k" sample_tx_bytes));
    Test.make ~name:"sim-sign" (staged (fun () -> Signer.sign signer "message"));
    Test.make ~name:"schnorr-sign" (staged (fun () -> Signer.sign schnorr_signer "message"));
    Test.make ~name:"gf32-mul"
      (staged (fun () -> Lo_sketch.Gf2m.mul Lo_sketch.Gf2m.gf32 0xDEADBEEF 0x12345678));
  ]

let fig6_group =
  (* Detection kernels: digest verification and consistency checks. *)
  let older, newer = digest_pair in
  let light = Commitment.strip_sketch newer in
  [
    Test.make ~name:"digest-verify-full" (staged (fun () -> Commitment.verify scheme newer));
    Test.make ~name:"digest-verify-light" (staged (fun () -> Commitment.verify scheme light));
    Test.make ~name:"check-extension-sketch"
      (staged (fun () -> Commitment.check_extension ~older ~newer ()));
    Test.make ~name:"check-extension-clock"
      (staged (fun () ->
           Commitment.check_extension ~older:(Commitment.strip_sketch older)
             ~newer:light ()));
    Test.make ~name:"evidence-verify"
      (staged
         (let log_a = Commitment.Log.create ~signer () in
          let log_b = Commitment.Log.create ~signer () in
          ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
          ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
          let ev =
            Evidence.Conflicting_digests
              {
                older = Commitment.Log.current_digest log_a;
                newer = Commitment.Log.current_digest log_b;
              }
          in
          fun () -> Evidence.verify scheme ev));
  ]

let fig7_group =
  (* Mempool-path kernels: prevalidation and commitment append. *)
  [
    Test.make ~name:"tx-decode" (staged (fun () -> Tx.of_string sample_tx_bytes));
    Test.make ~name:"tx-prevalidate" (staged (fun () -> Tx.prevalidate scheme sample_tx));
    Test.make ~name:"commit-append-1"
      (staged
         (let counter = ref 0 in
          let log = Commitment.Log.create ~signer () in
          fun () ->
            incr counter;
            ignore (Commitment.Log.append log ~source:None ~ids:[ 1 + (!counter land 0xFFFFFF) ])));
  ]

let fig8_group =
  (* Block building and inspection kernels. *)
  let ids = mk_ids 200 5 in
  let log = loaded_log ids in
  let bundles =
    List.map (fun b -> (b.Commitment.Log.seq, b.Commitment.Log.ids)) (Commitment.Log.bundles log)
  in
  let txs_by_short = Hashtbl.create 256 in
  List.iteri
    (fun i id ->
      let tx = Tx.create ~signer ~fee:(1 + (i mod 50)) ~created_at:0.0
          ~payload:(Printf.sprintf "b%d" i)
      in
      Hashtbl.replace txs_by_short id tx)
    ids;
  let input =
    {
      Policy.bundles;
      find_tx = (fun id -> Hashtbl.find_opt txs_by_short id);
      is_settled = (fun _ -> false);
      fee_threshold = 0;
      max_txs = 1000;
      seed = Block.genesis_hash;
    }
  in
  [
    Test.make ~name:"canonical-order-200"
      (staged (fun () -> Order.canonical ~seed:Block.genesis_hash ~bundles));
    Test.make ~name:"build-fifo-200" (staged (fun () -> Policy.build Policy.Lo_fifo input));
    Test.make ~name:"build-highest-fee-200"
      (staged (fun () -> Policy.build Policy.Highest_fee input));
  ]

let fig9_group =
  (* Wire-format kernels: what each byte of Fig. 9 costs to produce. *)
  let light = Commitment.Log.current_digest_light (loaded_log (mk_ids 30 6)) in
  let full = Commitment.Log.current_digest (loaded_log (mk_ids 30 7)) in
  let light_msg = Messages.encode (Messages.Commit_request { digest = light; delta = [ 1; 2; 3 ]; want = []; appended = [] }) in
  [
    Test.make ~name:"encode-commit-request-light"
      (staged (fun () ->
           Messages.encode (Messages.Commit_request { digest = light; delta = [ 1; 2; 3 ]; want = []; appended = [] })));
    Test.make ~name:"encode-digest-share-full"
      (staged (fun () -> Messages.encode (Messages.Digest_share full)));
    Test.make ~name:"decode-commit-request" (staged (fun () -> Messages.decode light_msg));
    Test.make ~name:"encode-tx-batch-10"
      (staged
         (let txs = List.init 10 (fun i ->
              Tx.create ~signer ~fee:i ~created_at:0.0 ~payload:(String.make 250 'y'))
          in
          fun () -> Messages.encode (Messages.Tx_batch txs)));
  ]

let fig10_group =
  (* Sketch reconciliation kernels at several difference sizes. *)
  List.concat_map
    (fun diff ->
      let merged = sketch_pair diff in
      [
        Test.make ~name:(Printf.sprintf "sketch-decode-diff%d" diff)
          (staged (fun () -> Lo_sketch.Sketch.decode merged));
      ])
    [ 4; 16; 64 ]
  @ [
      Test.make ~name:"sketch-add"
        (staged
           (let s = Lo_sketch.Sketch.create ~capacity:Commitment.default_sketch_capacity () in
            let counter = ref 0 in
            fun () ->
              incr counter;
              Lo_sketch.Sketch.add s (1 + (!counter land 0xFFFFF))));
      Test.make ~name:"strata-estimate"
        (staged
           (let a = Lo_sketch.Strata.of_list (mk_ids 300 11) in
            let b = Lo_sketch.Strata.of_list (mk_ids 320 12) in
            fun () -> Lo_sketch.Strata.estimate a b));
      Test.make ~name:"bloom-clock-compare"
        (staged
           (let a = Lo_bloom.Bloom_clock.create () in
            let b = Lo_bloom.Bloom_clock.create () in
            List.iter (Lo_bloom.Bloom_clock.add_int a) (mk_ids 100 8);
            List.iter (Lo_bloom.Bloom_clock.add_int b) (mk_ids 110 8);
            fun () -> Lo_bloom.Bloom_clock.compare_clocks a b));
    ]

let memcpu_group =
  (* Sec. 6.5: monolithic vs partitioned reconciliation cost. *)
  let mk n =
    let local = mk_ids n 9 and remote = mk_ids n 10 in
    (local, remote)
  in
  List.concat_map
    (fun n ->
      let local, remote = mk n in
      [
        Test.make ~name:(Printf.sprintf "reconcile-monolithic-%d" (2 * n))
          (staged (fun () ->
               Lo_sketch.Partitioned.reconcile_monolithic ~capacity:(2 * n)
                 ~local ~remote ()));
        Test.make ~name:(Printf.sprintf "reconcile-partitioned-%d" (2 * n))
          (staged (fun () ->
               Lo_sketch.Partitioned.reconcile ~capacity:64 ~local ~remote ()));
      ])
    [ 50; 125 ]

(* ----------------------------------------------------------------- *)
(* Bechamel driver                                                     *)
(* ----------------------------------------------------------------- *)

let run_group ~name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== bench group: %s ==\n" name;
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (key, result) ->
         match Analyze.OLS.estimates result with
         | Some [ ns ] -> Printf.printf "%-42s %12.1f ns/run\n" key ns
         | _ -> Printf.printf "%-42s (no estimate)\n" key)

let run_micro () =
  run_group ~name:"substrate" crypto_group;
  run_group ~name:"fig6" fig6_group;
  run_group ~name:"fig7" fig7_group;
  run_group ~name:"fig8" fig8_group;
  run_group ~name:"fig9" fig9_group;
  run_group ~name:"fig10" fig10_group;
  run_group ~name:"sec6.5" memcpu_group

(* ----------------------------------------------------------------- *)
(* Full experiments                                                    *)
(* ----------------------------------------------------------------- *)

let run_experiments () =
  let factor =
    match Sys.getenv_opt "LO_BENCH_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let scale =
    Lo_sim.Experiments.scaled ~factor
      { Lo_sim.Experiments.default_scale with reps = 1; duration = 15. }
  in
  Printf.printf "\n=== Paper experiments (nodes=%d, rate=%.0f tx/s, %.0f s) ===\n"
    scale.Lo_sim.Experiments.nodes scale.Lo_sim.Experiments.rate
    scale.Lo_sim.Experiments.duration;
  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "[%s took %.1f s wall-clock]\n%!" name (Unix.gettimeofday () -. t0)
  in
  timed "fig6" (fun () -> ignore (Lo_sim.Experiments.fig6 ~scale ~fractions:[ 0.1; 0.2; 0.3 ] ()));
  timed "fig7" (fun () -> ignore (Lo_sim.Experiments.fig7 ~scale ()));
  timed "fig8-left" (fun () -> ignore (Lo_sim.Experiments.fig8_left ~scale ()));
  timed "fig8-right" (fun () -> ignore (Lo_sim.Experiments.fig8_right ~scale ()));
  timed "fig9" (fun () -> ignore (Lo_sim.Experiments.fig9 ~scale ()));
  timed "fig10" (fun () -> ignore (Lo_sim.Experiments.fig10 ~scale ()));
  timed "memcpu" (fun () -> ignore (Lo_sim.Experiments.memcpu ~scale ()));
  timed "ablation" (fun () -> ignore (Lo_sim.Experiments.ablation ~scale ()))

let () =
  let micro_only = Sys.getenv_opt "LO_BENCH_MICRO_ONLY" = Some "1" in
  let sim_only = Sys.getenv_opt "LO_BENCH_SIM_ONLY" = Some "1" in
  if not sim_only then run_micro ();
  if not micro_only then run_experiments ()
