  $ ../../examples/quickstart.exe
  $ ../../examples/censorship_demo.exe
  $ ../../examples/sandwich_demo.exe
