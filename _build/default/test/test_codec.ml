(* Tests for lo_codec: scalar roundtrips, framing, malformed-input
   rejection, and property tests over random values. *)

module W = Lo_codec.Writer
module R = Lo_codec.Reader

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let encode f =
  let w = W.create () in
  f w;
  W.contents w

let scalar_tests =
  [
    Alcotest.test_case "u8 roundtrip" `Quick (fun () ->
        List.iter
          (fun v ->
            let r = R.of_string (encode (fun w -> W.u8 w v)) in
            check_int "u8" v (R.u8 r))
          [ 0; 1; 127; 128; 255 ]);
    Alcotest.test_case "u8 range checked" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Writer.u8: out of range")
          (fun () -> ignore (encode (fun w -> W.u8 w (-1))));
        Alcotest.check_raises "big" (Invalid_argument "Writer.u8: out of range")
          (fun () -> ignore (encode (fun w -> W.u8 w 256))));
    Alcotest.test_case "u16 big-endian" `Quick (fun () ->
        check_str "bytes" "\x12\x34" (encode (fun w -> W.u16 w 0x1234)));
    Alcotest.test_case "u32 big-endian" `Quick (fun () ->
        check_str "bytes" "\xde\xad\xbe\xef"
          (encode (fun w -> W.u32 w 0xDEADBEEF)));
    Alcotest.test_case "u64 roundtrip" `Quick (fun () ->
        List.iter
          (fun v ->
            let r = R.of_string (encode (fun w -> W.u64 w v)) in
            check_int "u64" v (R.u64 r))
          [ 0; 1; 1 lsl 40; max_int ]);
    Alcotest.test_case "varint sizes" `Quick (fun () ->
        check_int "1 byte" 1 (String.length (encode (fun w -> W.varint w 127)));
        check_int "2 bytes" 2 (String.length (encode (fun w -> W.varint w 128)));
        check_int "2 bytes" 2 (String.length (encode (fun w -> W.varint w 16383)));
        check_int "3 bytes" 3 (String.length (encode (fun w -> W.varint w 16384))));
    qtest "varint roundtrip" QCheck2.Gen.(int_bound max_int) (fun v ->
        let r = R.of_string (encode (fun w -> W.varint w v)) in
        R.varint r = v && R.at_end r);
    qtest "u32 roundtrip" QCheck2.Gen.(int_bound 0xFFFFFFFF) (fun v ->
        let r = R.of_string (encode (fun w -> W.u32 w v)) in
        R.u32 r = v);
    Alcotest.test_case "bool roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.bool w true; W.bool w false)) in
        check_bool "t" true (R.bool r);
        check_bool "f" false (R.bool r));
    Alcotest.test_case "bool rejects 2" `Quick (fun () ->
        let r = R.of_string "\x02" in
        Alcotest.check_raises "malformed" (R.Malformed "bool") (fun () ->
            ignore (R.bool r)));
  ]

let composite_tests =
  [
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.bytes w "hello")) in
        check_str "payload" "hello" (R.bytes r));
    Alcotest.test_case "fixed roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.fixed w "abcd")) in
        check_str "payload" "abcd" (R.fixed r 4));
    Alcotest.test_case "list roundtrip" `Quick (fun () ->
        let xs = [ 3; 1; 4; 1; 5 ] in
        let r = R.of_string (encode (fun w -> W.list w (W.varint w) xs)) in
        check_bool "equal" true (R.list r R.varint = xs));
    Alcotest.test_case "empty list" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.list w (W.varint w) [])) in
        check_bool "empty" true (R.list r R.varint = []));
    Alcotest.test_case "expect_end catches trailing bytes" `Quick (fun () ->
        let r = R.of_string "\x00\x01" in
        ignore (R.u8 r);
        Alcotest.check_raises "trailing" (R.Malformed "trailing bytes")
          (fun () -> R.expect_end r));
    Alcotest.test_case "truncated input raises" `Quick (fun () ->
        let r = R.of_string "\x01" in
        Alcotest.check_raises "short" (R.Malformed "truncated u32") (fun () ->
            ignore (R.u32 r)));
    Alcotest.test_case "bogus list count rejected" `Quick (fun () ->
        (* claims 100 elements but has almost no payload *)
        let r = R.of_string "\x64\x01" in
        Alcotest.check_raises "count" (R.Malformed "list count exceeds input")
          (fun () -> ignore (R.list r R.varint)));
    Alcotest.test_case "varint too long rejected" `Quick (fun () ->
        let r = R.of_string (String.make 10 '\xff') in
        Alcotest.check_raises "long" (R.Malformed "varint too long") (fun () ->
            ignore (R.varint r)));
    qtest "mixed sequence roundtrip"
      QCheck2.Gen.(
        quad (int_bound 255) (int_bound max_int) (small_string ~gen:char)
          (list_size (int_bound 10) (int_bound 0xFFFF)))
      (fun (a, b, s, xs) ->
        let payload =
          encode (fun w ->
              W.u8 w a;
              W.varint w b;
              W.bytes w s;
              W.list w (W.u16 w) xs)
        in
        let r = R.of_string payload in
        R.u8 r = a && R.varint r = b && R.bytes r = s
        && R.list r R.u16 = xs
        && R.at_end r);
  ]

let () =
  Alcotest.run "lo_codec"
    [ ("scalars", scalar_tests); ("composites", composite_tests) ]
