(* Tests for lo_bloom: Bloom filter semantics and Bloom-clock
   partial-order laws. *)

open Lo_bloom

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bloom_tests =
  [
    Alcotest.test_case "no false negatives" `Quick (fun () ->
        let b = Bloom.create ~bits:1024 ~hashes:4 in
        let items = List.init 50 (fun i -> Printf.sprintf "item-%d" i) in
        List.iter (Bloom.add b) items;
        List.iter (fun i -> check_bool i true (Bloom.mem b i)) items);
    Alcotest.test_case "empty filter matches nothing" `Quick (fun () ->
        let b = Bloom.create ~bits:256 ~hashes:3 in
        check_bool "no" false (Bloom.mem b "anything"));
    Alcotest.test_case "false positive rate reasonable" `Quick (fun () ->
        let b = Bloom.create ~bits:4096 ~hashes:4 in
        for i = 0 to 99 do
          Bloom.add b (Printf.sprintf "present-%d" i)
        done;
        let fp = ref 0 in
        for i = 0 to 999 do
          if Bloom.mem b (Printf.sprintf "absent-%d" i) then incr fp
        done;
        check_bool "below 5%" true (!fp < 50));
    Alcotest.test_case "count tracks insertions" `Quick (fun () ->
        let b = Bloom.create ~bits:128 ~hashes:2 in
        Bloom.add b "a";
        Bloom.add b "a";
        check_int "count" 2 (Bloom.count b));
    Alcotest.test_case "estimated fp rate grows" `Quick (fun () ->
        let b = Bloom.create ~bits:256 ~hashes:3 in
        let before = Bloom.false_positive_rate b in
        for i = 0 to 49 do
          Bloom.add b (string_of_int i)
        done;
        check_bool "grows" true (Bloom.false_positive_rate b > before));
    Alcotest.test_case "wire roundtrip" `Quick (fun () ->
        let b = Bloom.create ~bits:512 ~hashes:3 in
        List.iter (Bloom.add b) [ "x"; "y"; "z" ];
        let w = Lo_codec.Writer.create () in
        Bloom.encode w b;
        let b' = Bloom.decode (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
        List.iter (fun i -> check_bool i true (Bloom.mem b' i)) [ "x"; "y"; "z" ];
        check_int "count" 3 (Bloom.count b'));
  ]

let clock_of_ints ?(cells = 32) ids =
  let c = Bloom_clock.create ~cells () in
  List.iter (Bloom_clock.add_int c) ids;
  c

let clock_tests =
  [
    Alcotest.test_case "fresh clocks are equal" `Quick (fun () ->
        check_bool "equal" true
          (Bloom_clock.compare_clocks (Bloom_clock.create ()) (Bloom_clock.create ())
           = Bloom_clock.Equal));
    Alcotest.test_case "superset dominates" `Quick (fun () ->
        let small = clock_of_ints [ 1; 2; 3 ] in
        let big = clock_of_ints [ 1; 2; 3; 4; 5 ] in
        check_bool "dominates" true (Bloom_clock.dominates big small);
        check_bool "not reverse" false (Bloom_clock.dominates small big));
    Alcotest.test_case "same multiset = equal" `Quick (fun () ->
        let a = clock_of_ints [ 10; 20; 30 ] in
        let b = clock_of_ints [ 30; 10; 20 ] in
        check_bool "equal" true (Bloom_clock.compare_clocks a b = Bloom_clock.Equal));
    Alcotest.test_case "disjoint large sets are concurrent" `Quick (fun () ->
        let a = clock_of_ints (List.init 40 (fun i -> i + 1)) in
        let b = clock_of_ints (List.init 40 (fun i -> i + 1000)) in
        check_bool "concurrent" true
          (Bloom_clock.compare_clocks a b = Bloom_clock.Concurrent));
    Alcotest.test_case "count" `Quick (fun () ->
        check_int "count" 5 (Bloom_clock.count (clock_of_ints [ 1; 2; 3; 4; 5 ])));
    Alcotest.test_case "estimate bounds difference" `Quick (fun () ->
        let a = clock_of_ints [ 1; 2; 3 ] in
        let b = clock_of_ints [ 1; 2; 3; 7; 8; 9 ] in
        let est = Bloom_clock.estimate_difference a b in
        check_bool "est >= 1" true (est >= 1);
        check_bool "est <= 3" true (est <= 3));
    Alcotest.test_case "diff_cells empty iff equal counters" `Quick (fun () ->
        let a = clock_of_ints [ 5; 6 ] and b = clock_of_ints [ 5; 6 ] in
        check_bool "no diff" true (Bloom_clock.diff_cells a b = []));
    Alcotest.test_case "merge dominates both" `Quick (fun () ->
        let a = clock_of_ints [ 1; 2 ] and b = clock_of_ints [ 2; 3; 4 ] in
        let m = Bloom_clock.merge a b in
        check_bool "a" true (Bloom_clock.dominates m a);
        check_bool "b" true (Bloom_clock.dominates m b));
    Alcotest.test_case "encoded size matches paper layout" `Quick (fun () ->
        (* 32 cells * 2 bytes + 2 (cells) + 4 (count) = 70 bytes; the
           paper quotes 68 for the cells+count. *)
        let c = Bloom_clock.create ~cells:32 () in
        check_int "size" 70 (Bloom_clock.encoded_size c);
        let w = Lo_codec.Writer.create () in
        Bloom_clock.encode w c;
        check_int "encoded" 70 (Lo_codec.Writer.length w));
    Alcotest.test_case "wire roundtrip" `Quick (fun () ->
        let c = clock_of_ints [ 11; 22; 33; 44 ] in
        let w = Lo_codec.Writer.create () in
        Bloom_clock.encode w c;
        let c' = Bloom_clock.decode (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
        check_bool "equal" true (Bloom_clock.compare_clocks c c' = Bloom_clock.Equal);
        check_int "count" (Bloom_clock.count c) (Bloom_clock.count c'));
    Alcotest.test_case "cell_of_int deterministic and in range" `Quick (fun () ->
        for id = 1 to 100 do
          let c1 = Bloom_clock.cell_of_int ~cells:32 id in
          let c2 = Bloom_clock.cell_of_int ~cells:32 id in
          check_int "det" c1 c2;
          check_bool "range" true (c1 >= 0 && c1 < 32)
        done);
    qtest "adding preserves dominance"
      QCheck2.Gen.(pair (list_size (int_bound 20) (int_range 1 10000))
                     (list_size (int_bound 10) (int_range 1 10000)))
      (fun (base, extra) ->
        let a = clock_of_ints base in
        let b = clock_of_ints (base @ extra) in
        Bloom_clock.dominates b a);
    qtest "subset never dominates strict superset"
      QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 10000))
      (fun base ->
        let a = clock_of_ints base in
        let b = clock_of_ints (base @ [ 424242 ]) in
        Bloom_clock.compare_clocks a b = Bloom_clock.Less);
  ]

let () =
  Alcotest.run "lo_bloom" [ ("bloom", bloom_tests); ("bloom-clock", clock_tests) ]
