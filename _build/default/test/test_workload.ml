(* Tests for lo_workload: fee model statistics, Poisson arrivals, and
   the transaction spec generator. *)

open Lo_workload
module Rng = Lo_net.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fee_tests =
  [
    Alcotest.test_case "fees respect minimum" `Quick (fun () ->
        let rng = Rng.create 1 in
        for _ = 1 to 1000 do
          check_bool "min" true (Fee_model.draw rng Fee_model.default >= 1)
        done);
    Alcotest.test_case "median near exp(mu)" `Quick (fun () ->
        let rng = Rng.create 2 in
        let fees = List.init 20001 (fun _ -> Fee_model.draw rng Fee_model.default) in
        let sorted = List.sort compare fees in
        let median = List.nth sorted 10000 in
        let expected = exp Fee_model.default.Fee_model.mu in
        check_bool "median" true
          (float_of_int median > expected *. 0.8
          && float_of_int median < expected *. 1.2));
    Alcotest.test_case "heavy tail exists" `Quick (fun () ->
        let rng = Rng.create 3 in
        let fees = List.init 20000 (fun _ -> Fee_model.draw rng Fee_model.default) in
        let max_fee = List.fold_left max 0 fees in
        let sorted = List.sort compare fees in
        let median = List.nth sorted 10000 in
        check_bool "tail" true (max_fee > 10 * median));
    Alcotest.test_case "quantile monotone" `Quick (fun () ->
        let m = Fee_model.default in
        let q25 = Fee_model.quantile m 0.25 in
        let q50 = Fee_model.quantile m 0.5 in
        let q75 = Fee_model.quantile m 0.75 in
        check_bool "monotone" true (q25 <= q50 && q50 <= q75));
    Alcotest.test_case "quantile matches empirical" `Quick (fun () ->
        let rng = Rng.create 4 in
        let m = Fee_model.default in
        let fees = List.init 20001 (fun _ -> Fee_model.draw rng m) in
        let sorted = Array.of_list (List.sort compare fees) in
        let q75_emp = sorted.(15000) in
        let q75 = Fee_model.quantile m 0.75 in
        check_bool "close" true
          (float_of_int q75 > float_of_int q75_emp *. 0.8
          && float_of_int q75 < float_of_int q75_emp *. 1.2));
    Alcotest.test_case "quantile domain" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Fee_model.quantile: q in (0,1)") (fun () ->
            ignore (Fee_model.quantile Fee_model.default 0.)));
  ]

let arrival_tests =
  [
    Alcotest.test_case "poisson count near rate*duration" `Quick (fun () ->
        let rng = Rng.create 5 in
        let times = Arrival.poisson_times rng ~rate:50. ~duration:100. in
        let n = List.length times in
        check_bool "count" true (n > 4500 && n < 5500));
    Alcotest.test_case "poisson increasing and in range" `Quick (fun () ->
        let rng = Rng.create 6 in
        let times = Arrival.poisson_times rng ~rate:10. ~duration:10. in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        check_bool "increasing" true (increasing times);
        List.iter
          (fun t -> check_bool "range" true (t >= 0. && t < 10.))
          times);
    Alcotest.test_case "zero rate yields nothing" `Quick (fun () ->
        let rng = Rng.create 7 in
        check_bool "empty" true (Arrival.poisson_times rng ~rate:0. ~duration:10. = []));
    Alcotest.test_case "uniform times exact" `Quick (fun () ->
        let times = Arrival.uniform_times ~rate:2. ~duration:5. in
        check_int "count" 10 (List.length times));
  ]

let txgen_tests =
  [
    Alcotest.test_case "specs ordered by time" `Quick (fun () ->
        let rng = Rng.create 8 in
        let specs = Tx_gen.generate rng Tx_gen.default_config ~num_nodes:10 in
        let rec ordered = function
          | a :: (b :: _ as rest) ->
              a.Tx_gen.created_at <= b.Tx_gen.created_at && ordered rest
          | _ -> true
        in
        check_bool "ordered" true (ordered specs));
    Alcotest.test_case "origins in range" `Quick (fun () ->
        let rng = Rng.create 9 in
        let specs = Tx_gen.generate rng Tx_gen.default_config ~num_nodes:7 in
        List.iter
          (fun s -> check_bool "origin" true (s.Tx_gen.origin >= 0 && s.Tx_gen.origin < 7))
          specs);
    Alcotest.test_case "default size is 250 bytes" `Quick (fun () ->
        let rng = Rng.create 10 in
        let specs = Tx_gen.generate rng Tx_gen.default_config ~num_nodes:5 in
        List.iter
          (fun s ->
            check_int "size" 250 s.Tx_gen.size;
            check_int "payload" 250 (String.length (Tx_gen.payload s)))
          specs);
    Alcotest.test_case "payload deterministic per nonce" `Quick (fun () ->
        let rng = Rng.create 11 in
        let specs = Tx_gen.generate rng Tx_gen.default_config ~num_nodes:5 in
        match specs with
        | s :: _ ->
            Alcotest.(check string) "same" (Tx_gen.payload s) (Tx_gen.payload s)
        | [] -> Alcotest.fail "no specs");
    Alcotest.test_case "nonces unique" `Quick (fun () ->
        let rng = Rng.create 12 in
        let specs = Tx_gen.generate rng Tx_gen.default_config ~num_nodes:5 in
        let nonces = List.map (fun s -> s.Tx_gen.nonce) specs in
        check_int "unique" (List.length nonces)
          (List.length (List.sort_uniq compare nonces)));
  ]

let trace_tests =
  [
    Alcotest.test_case "render/parse roundtrip" `Quick (fun () ->
        let rng = Rng.create 13 in
        let trace = Trace.synthesize rng ~rate:20. ~duration:5. () in
        match Trace.parse (Trace.render trace) with
        | Ok parsed ->
            check_int "count" (List.length trace) (List.length parsed);
            List.iter2
              (fun a b ->
                check_bool "time" true (abs_float (a.Trace.at -. b.Trace.at) < 1e-5);
                check_int "fee" a.Trace.fee b.Trace.fee;
                check_int "size" a.Trace.size b.Trace.size)
              trace parsed
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "comments and blanks skipped" `Quick (fun () ->
        match Trace.parse "# header

1.0,5,250
2.0,7,250
" with
        | Ok [ a; b ] ->
            check_int "fee a" 5 a.Trace.fee;
            check_bool "time b" true (b.Trace.at = 2.0)
        | Ok _ -> Alcotest.fail "wrong count"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "malformed line rejected with location" `Quick (fun () ->
        match Trace.parse "1.0,5,250
not,a,line
" with
        | Error msg -> check_bool "names line 2" true
            (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
        | Ok _ -> Alcotest.fail "accepted junk");
    Alcotest.test_case "decreasing timestamps rejected" `Quick (fun () ->
        match Trace.parse "2.0,5,250
1.0,5,250
" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted time travel");
    Alcotest.test_case "to_specs preserves trace fields" `Quick (fun () ->
        let rng = Rng.create 14 in
        let trace = Trace.synthesize rng ~rate:10. ~duration:3. () in
        let specs = Trace.to_specs (Rng.create 15) trace ~num_nodes:7 in
        check_int "count" (List.length trace) (List.length specs);
        List.iter2
          (fun (r : Trace.record) (s : Tx_gen.spec) ->
            check_bool "time" true (r.Trace.at = s.Tx_gen.created_at);
            check_int "fee" r.Trace.fee s.Tx_gen.fee;
            check_bool "origin" true (s.Tx_gen.origin >= 0 && s.Tx_gen.origin < 7))
          trace specs);
    Alcotest.test_case "stats" `Quick (fun () ->
        let trace =
          [ { Trace.at = 1.0; fee = 5; size = 250 };
            { Trace.at = 4.0; fee = 50; size = 250 } ]
        in
        match Trace.stats trace with
        | Some (n, dur, lo, hi) ->
            check_int "n" 2 n;
            check_bool "dur" true (dur = 3.0);
            check_int "lo" 5 lo;
            check_int "hi" 50 hi
        | None -> Alcotest.fail "no stats");
    Alcotest.test_case "empty stats" `Quick (fun () ->
        check_bool "none" true (Trace.stats [] = None));
  ]

let () =
  Alcotest.run "lo_workload"
    [ ("fee-model", fee_tests); ("arrival", arrival_tests);
      ("tx-gen", txgen_tests); ("trace", trace_tests) ]
