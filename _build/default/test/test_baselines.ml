(* Tests for the baseline mempool protocols: Flood dissemination,
   PeerReview's tamper-evident logs and audits, and the Narwhal DAG
   rounds. *)

open Lo_baselines
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer
module Tx = Lo_core.Tx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_flood_net ?(n = 20) ~seed () =
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed () in
  let rng = Lo_net.Rng.create (seed + 1) in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:6 ~max_in:125 in
  let config = Flood.default_config scheme in
  let floods =
    Array.init n (fun i ->
        let f = Flood.create config ~net ~index:i ~neighbors:(Lo_net.Topology.neighbors topo i) in
        Flood.start f;
        f)
  in
  (net, floods, scheme)

let mk_tx scheme ~fee payload =
  let client = Signer.make scheme ~seed:"flood-client" in
  Tx.create ~signer:client ~fee ~created_at:0.0 ~payload

let flood_tests =
  [
    Alcotest.test_case "disseminates to everyone" `Slow (fun () ->
        let net, floods, scheme = mk_flood_net ~seed:1 () in
        let tx = mk_tx scheme ~fee:5 "flood-me" in
        Flood.submit_tx floods.(0) tx;
        Net.run_until net 20.0;
        Array.iter
          (fun f -> check_bool "has tx" true (Flood.has_tx f tx.Tx.id))
          floods);
    Alcotest.test_case "content hook fires once per node" `Slow (fun () ->
        let net, floods, scheme = mk_flood_net ~seed:2 () in
        let events = ref 0 in
        Array.iter (fun f -> Flood.on_tx_content f (fun _ ~now:_ -> incr events)) floods;
        let tx = mk_tx scheme ~fee:5 "count-me" in
        Flood.submit_tx floods.(3) tx;
        Net.run_until net 20.0;
        check_int "once per node" 20 !events);
    Alcotest.test_case "invalid tx rejected" `Quick (fun () ->
        let _net, floods, scheme = mk_flood_net ~n:3 ~seed:3 () in
        let tx = mk_tx scheme ~fee:5 "ok" in
        let raw = Bytes.of_string (Tx.to_string tx) in
        Bytes.set raw 40 (Char.chr (Char.code (Bytes.get raw 40) lxor 1));
        Flood.submit_tx floods.(0) (Tx.of_string (Bytes.to_string raw));
        check_int "empty" 0 (Flood.mempool_size floods.(0)));
    Alcotest.test_case "mempool messages generate overhead traffic" `Slow
      (fun () ->
        let net, floods, scheme = mk_flood_net ~n:10 ~seed:4 () in
        Flood.submit_tx floods.(0) (mk_tx scheme ~fee:3 "traffic");
        Net.run_until net 10.0;
        let tags = Net.bytes_by_tag net in
        check_bool "mempool tag" true (List.mem_assoc "flood:mempool" tags));
  ]

let mk_pr_net ?(n = 15) ~seed () =
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed () in
  let rng = Lo_net.Rng.create (seed + 1) in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:6 ~max_in:125 in
  let config = { (Peer_review.default_config scheme) with Peer_review.num_witnesses = 4 } in
  let wrng = Lo_net.Rng.create (seed + 2) in
  let audited = Array.make n [] in
  for node = 0 to n - 1 do
    let ws =
      Lo_net.Rng.sample_without_replacement wrng config.Peer_review.num_witnesses
        (List.filter (fun i -> i <> node) (List.init n Fun.id))
    in
    List.iter (fun w -> audited.(w) <- node :: audited.(w)) ws
  done;
  let prs =
    Array.init n (fun i ->
        let signer = Signer.make scheme ~seed:(Printf.sprintf "pr%d" i) in
        let p =
          Peer_review.create config ~net ~index:i
            ~neighbors:(Lo_net.Topology.neighbors topo i)
            ~witnesses:audited.(i) ~signer
        in
        Peer_review.start p;
        p)
  in
  (net, prs, scheme)

let peer_review_tests =
  [
    Alcotest.test_case "disseminates like flood" `Slow (fun () ->
        let net, prs, scheme = mk_pr_net ~seed:5 () in
        let tx = mk_tx scheme ~fee:5 "pr-tx" in
        Peer_review.submit_tx prs.(0) tx;
        Net.run_until net 20.0;
        Array.iter
          (fun p -> check_int "mempool" 1 (Peer_review.mempool_size p))
          prs);
    Alcotest.test_case "logs grow with traffic" `Slow (fun () ->
        let net, prs, scheme = mk_pr_net ~seed:6 () in
        Peer_review.submit_tx prs.(0) (mk_tx scheme ~fee:5 "log-me");
        Net.run_until net 10.0;
        let total = Array.fold_left (fun acc p -> acc + Peer_review.log_length p) 0 prs in
        check_bool "non-empty" true (total > 0));
    Alcotest.test_case "honest audits verify" `Slow (fun () ->
        let net, prs, scheme = mk_pr_net ~seed:7 () in
        Peer_review.submit_tx prs.(2) (mk_tx scheme ~fee:5 "audit-me");
        Net.run_until net 30.0;
        Array.iter (fun p -> check_bool "ok" true (Peer_review.audits_ok p)) prs);
    Alcotest.test_case "tampered log fails the audit" `Slow (fun () ->
        let net, prs, scheme = mk_pr_net ~n:8 ~seed:88 () in
        Peer_review.submit_tx prs.(0) (mk_tx scheme ~fee:5 "tamper-me");
        Net.run_until net 12.0;
        (* forge a pr:log reply with a broken hash chain and hand it to
           node 0 acting as witness for node 1 *)
        let w = Lo_codec.Writer.create () in
        Lo_codec.Writer.varint w 1 (* one entry *);
        Lo_codec.Writer.varint w 0 (* seq *);
        Lo_codec.Writer.u8 w 0 (* kind *);
        Lo_codec.Writer.varint w 3 (* peer *);
        Lo_codec.Writer.fixed w (String.make 32 'x') (* msg hash *);
        Lo_codec.Writer.fixed w (String.make 32 'y') (* bogus chain *);
        Net.send net ~src:1 ~dst:0 ~tag:"pr:log" (Lo_codec.Writer.contents w);
        Net.run_until net 13.0;
        check_bool "audit failed" false (Peer_review.audits_ok prs.(0)));
    Alcotest.test_case "accountability traffic present" `Slow (fun () ->
        let net, prs, scheme = mk_pr_net ~n:8 ~seed:8 () in
        Peer_review.submit_tx prs.(0) (mk_tx scheme ~fee:5 "traffic");
        Net.run_until net 15.0;
        let tags = Net.bytes_by_tag net in
        check_bool "auth" true (List.mem_assoc "pr:auth" tags);
        check_bool "log" true (List.mem_assoc "pr:log" tags));
  ]

let mk_nw_net ?(n = 12) ~seed () =
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed () in
  let config = Narwhal.default_config scheme in
  let nws =
    Array.init n (fun i ->
        let signer = Signer.make scheme ~seed:(Printf.sprintf "nw%d" i) in
        let nw = Narwhal.create config ~net ~index:i ~num_nodes:n ~signer in
        Narwhal.start nw;
        nw)
  in
  (net, nws, scheme)

let narwhal_tests =
  [
    Alcotest.test_case "transactions commit via headers" `Slow (fun () ->
        let net, nws, scheme = mk_nw_net ~seed:9 () in
        let committed = ref 0 in
        Array.iter
          (fun nw -> Narwhal.on_tx_committed nw (fun _ ~now:_ -> incr committed))
          nws;
        let tx = mk_tx scheme ~fee:5 "narwhal-tx" in
        Narwhal.submit_tx nws.(0) tx;
        Net.run_until net 10.0;
        (* every node should commit the tx via some header *)
        check_int "committed everywhere" 12 !committed);
    Alcotest.test_case "content reaches everyone quickly" `Slow (fun () ->
        let net, nws, scheme = mk_nw_net ~seed:10 () in
        let latencies = ref [] in
        let tx = mk_tx scheme ~fee:5 "fast" in
        Array.iter
          (fun nw ->
            Narwhal.on_tx_content nw (fun tx' ~now ->
                if String.equal tx'.Tx.id tx.Tx.id then latencies := now :: !latencies))
          nws;
        Net.schedule net ~delay:1.0 (fun _ -> Narwhal.submit_tx nws.(3) tx);
        Net.run_until net 10.0;
        check_int "all got it" 12 (List.length !latencies);
        List.iter
          (fun t -> check_bool "fast" true (t -. 1.0 < 2.0))
          !latencies);
    Alcotest.test_case "round traffic even without txs" `Slow (fun () ->
        let net, _nws, _scheme = mk_nw_net ~n:6 ~seed:11 () in
        Net.run_until net 5.0;
        let tags = Net.bytes_by_tag net in
        check_bool "batches" true (List.mem_assoc "nw:batch" tags);
        check_bool "acks" true (List.mem_assoc "nw:ack" tags);
        check_bool "headers" true (List.mem_assoc "nw:header" tags));
    Alcotest.test_case "headers require quorum" `Slow (fun () ->
        let net, nws, _scheme = mk_nw_net ~n:6 ~seed:12 () in
        (* take down half the network: quorum of 2/3 unreachable, no headers *)
        for i = 3 to 5 do
          Net.set_down net i true
        done;
        Net.run_until net 5.0;
        check_int "no headers" 0 (Narwhal.headers_seen nws.(0)));
  ]

let () =
  Alcotest.run "lo_baselines"
    [
      ("flood", flood_tests);
      ("peer-review", peer_review_tests);
      ("narwhal", narwhal_tests);
    ]
