The substrate self-check is fully deterministic:

  $ ../../bin/lo.exe selfcheck
  sha256 empty-string vector                   ok
  sha256 'abc' vector                          ok
  hmac rfc4231 vector                          ok
  secp256k1 generator order                    ok
  schnorr sign/verify                          ok
  schnorr rejects wrong message                ok
  pinsketch symmetric difference               ok
  gf(2^32) field inverse                       ok
  commitment digest verifies                   ok
  all self-checks passed.

Unknown subcommands fail cleanly:

  $ ../../bin/lo.exe no-such-figure 2>/dev/null
  [124]
