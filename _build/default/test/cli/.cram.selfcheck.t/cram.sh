  $ ../../bin/lo.exe selfcheck
  $ ../../bin/lo.exe no-such-figure 2>/dev/null
