test/test_node.mli:
