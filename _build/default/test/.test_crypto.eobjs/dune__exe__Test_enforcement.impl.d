test/test_enforcement.ml: Accountability Alcotest Array Client Commitment Directory Enforcement Evidence List Lo_core Lo_crypto Lo_net Mempool Messages Node Policy Printf String Tx
