test/test_codec.ml: Alcotest List Lo_codec QCheck2 QCheck_alcotest String
