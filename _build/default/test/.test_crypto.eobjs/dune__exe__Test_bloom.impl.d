test/test_bloom.ml: Alcotest Bloom Bloom_clock List Lo_bloom Lo_codec Printf QCheck2 QCheck_alcotest
