test/test_crypto.ml: Alcotest Array Bytes Char Fun Hex Hmac Hmac_drbg List Lo_crypto Merkle Printf QCheck2 QCheck_alcotest Schnorr Secp256k1 Sha256 Signer String Uint256
