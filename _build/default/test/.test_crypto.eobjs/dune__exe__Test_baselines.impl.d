test/test_baselines.ml: Alcotest Array Bytes Char Flood Fun List Lo_baselines Lo_codec Lo_core Lo_crypto Lo_net Narwhal Peer_review Printf String
