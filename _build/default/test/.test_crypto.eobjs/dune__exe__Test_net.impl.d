test/test_net.ml: Alcotest Array Event_queue Fun Latency List Lo_net Mux Network Peer_sampler QCheck2 QCheck_alcotest Rng Topology
