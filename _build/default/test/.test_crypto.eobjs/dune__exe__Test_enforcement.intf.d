test/test_enforcement.mli:
