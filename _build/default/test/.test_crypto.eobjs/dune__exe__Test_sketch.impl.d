test/test_sketch.ml: Alcotest Array Berlekamp_massey Fun Gf2m Hashtbl List Lo_codec Lo_net Lo_sketch Partitioned Poly Printf QCheck2 QCheck_alcotest Sketch Strata
