test/test_workload.ml: Alcotest Array Arrival Fee_model List Lo_net Lo_workload String Trace Tx_gen
