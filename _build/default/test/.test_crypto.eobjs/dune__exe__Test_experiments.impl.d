test/test_experiments.ml: Alcotest Array Experiments Float List Lo_core Lo_net Lo_sim Lo_workload Metrics Report Scenario Sys
